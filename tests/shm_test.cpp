// Tests for the same-host shared-memory data plane: the SPSC ring
// (exercised over plain heap memory, exactly as the header invites) and
// the kHello transport negotiation end to end over a real Unix socket.
#include "common/rng.hpp"
#include "msg/message.hpp"
#include "msg/shm_ring.hpp"
#include "msg/shm_transport.hpp"
#include "msg/transport.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace simfs::msg {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Ring unit tests: one header + data area on the heap, a producer-side and
// a consumer-side ShmRing over the same memory — the exact arrangement the
// two processes have, minus the mmap.
// ---------------------------------------------------------------------------

struct HeapRing {
  explicit HeapRing(std::size_t slots)
      : data(slots * kShmSlotBytes),
        producer(&hdr, data.data(), data.size(), &closed),
        consumer(&hdr, data.data(), data.size(), &closed) {
    ShmRing::initHeader(&hdr);
  }

  ShmRingHdr hdr{};
  std::atomic<std::uint32_t> closed{0};
  std::vector<char> data;
  ShmRing producer;
  ShmRing consumer;
};

void produceFrame(ShmRing& ring, std::string_view payload) {
  char* dst = ring.beginWrite(static_cast<std::uint32_t>(payload.size()), 1s);
  ASSERT_NE(dst, nullptr);
  std::memcpy(dst, payload.data(), payload.size());
  ring.commitWrite(static_cast<std::uint32_t>(payload.size()), kSlotMsg, 0);
}

std::string consumeFrame(ShmRing& ring) {
  std::string out;
  const auto poll =
      ring.consume(1s, [&](std::string_view p) { out.assign(p); });
  EXPECT_EQ(poll, ShmRing::Poll::kFrame);
  return out;
}

TEST(ShmRingTest, FifoSurvivesWrapAroundAndPadRecords) {
  // A small ring with varying frame sizes forces the producer through the
  // wrap point (and its pad records) many times over. Frame sizes are
  // bounded so the at most three outstanding frames (worst case
  // pad+extent < 2 * roundUp(8+600) = 1.5 KiB each) always fit: this
  // single thread has nobody to drain a full ring.
  HeapRing r(32);
  Rng rng(20260809);
  std::vector<std::string> sent;
  for (int i = 0; i < 400; ++i) {
    const auto len = static_cast<std::size_t>(rng.uniformInt(0, 600));
    std::string payload(len, '\0');
    for (auto& c : payload) c = static_cast<char>(rng.uniformInt(0, 255));
    produceFrame(r.producer, payload);
    sent.push_back(std::move(payload));
    // Drain in bursts so occupancy (and therefore the wrap offset) varies.
    if (i % 3 == 0) {
      for (auto& expect : sent) EXPECT_EQ(consumeFrame(r.consumer), expect);
      sent.clear();
    }
  }
  for (auto& expect : sent) EXPECT_EQ(consumeFrame(r.consumer), expect);
  EXPECT_EQ(r.consumer.consume(1ms, [](std::string_view) {}),
            ShmRing::Poll::kIdle);
}

TEST(ShmRingTest, FullRingBlocksProducerUntilConsumerFrees) {
  HeapRing r(16);
  const std::string payload(kShmSlotBytes - sizeof(ShmSlotHdr), 'x');
  // Fill every slot, then confirm the next write times out rather than
  // overwriting unconsumed records.
  for (int i = 0; i < 16; ++i) produceFrame(r.producer, payload);
  EXPECT_EQ(r.producer.beginWrite(
                static_cast<std::uint32_t>(payload.size()), 20ms),
            nullptr);
  // Freeing exactly one extent unsticks exactly one write.
  EXPECT_EQ(consumeFrame(r.consumer), payload);
  produceFrame(r.producer, payload);
  EXPECT_EQ(r.producer.beginWrite(
                static_cast<std::uint32_t>(payload.size()), 20ms),
            nullptr);
}

TEST(ShmRingTest, CloseMaskAbortsBothWaiters) {
  HeapRing r(16);
  r.closed.store(1);
  EXPECT_EQ(r.consumer.consume(10s, [](std::string_view) {}),
            ShmRing::Poll::kClosed);
  const std::string payload(kShmSlotBytes - sizeof(ShmSlotHdr), 'x');
  for (int i = 0; i < 16; ++i) {
    char* dst = r.producer.beginWrite(
        static_cast<std::uint32_t>(payload.size()), 10s);
    if (dst == nullptr) break;  // closed mask may stop the fill early
    std::memcpy(dst, payload.data(), payload.size());
    r.producer.commitWrite(static_cast<std::uint32_t>(payload.size()),
                           kSlotMsg, 0);
  }
  // Whether or not the fill completed, a blocked producer must abort
  // promptly instead of waiting out the full timeout.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(r.producer.beginWrite(
                static_cast<std::uint32_t>(payload.size()), 10s),
            nullptr);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);
}

TEST(ShmRingTest, ForgedKindPoisonsInsteadOfCrashing) {
  HeapRing r(16);
  ShmSlotHdr rec{16, /*kind=*/0xDEAD, 0};
  std::memcpy(r.data.data(), &rec, sizeof(rec));
  r.hdr.head.store(kShmSlotBytes, std::memory_order_release);
  EXPECT_EQ(r.consumer.consume(1s, [](std::string_view) {}),
            ShmRing::Poll::kPoisoned);
}

TEST(ShmRingTest, ForgedLengthBeyondPublishedBytesPoisons) {
  HeapRing r(16);
  // One slot published, but the header claims a payload spanning far more.
  ShmSlotHdr rec{static_cast<std::uint32_t>(8 * kShmSlotBytes), kSlotMsg, 0};
  std::memcpy(r.data.data(), &rec, sizeof(rec));
  r.hdr.head.store(kShmSlotBytes, std::memory_order_release);
  EXPECT_EQ(r.consumer.consume(1s, [](std::string_view) {}),
            ShmRing::Poll::kPoisoned);
}

TEST(ShmRingTest, ForgedLengthBeyondReassemblyBoundPoisons) {
  HeapRing r(16);
  ShmSlotHdr rec{~std::uint32_t{0}, kSlotMsg, 0};
  std::memcpy(r.data.data(), &rec, sizeof(rec));
  r.hdr.head.store(r.data.size(), std::memory_order_release);
  EXPECT_EQ(r.consumer.consume(1s, [](std::string_view) {}),
            ShmRing::Poll::kPoisoned);
}

TEST(ShmRingTest, SubHeaderHeadAdvancePoisons) {
  HeapRing r(16);
  // head moved by less than one record header: nothing can be valid.
  r.hdr.head.store(4, std::memory_order_release);
  EXPECT_EQ(r.consumer.consume(1s, [](std::string_view) {}),
            ShmRing::Poll::kPoisoned);
}

TEST(ShmRingTest, ForgedPadLongerThanPublishedPoisons) {
  HeapRing r(16);
  // A pad record always runs to the ring end; publishing only one slot of
  // it is inconsistent and must not make the consumer skip unpublished
  // bytes.
  ShmSlotHdr rec{0, kSlotPad, 0};
  std::memcpy(r.data.data(), &rec, sizeof(rec));
  r.hdr.head.store(kShmSlotBytes, std::memory_order_release);
  EXPECT_EQ(r.consumer.consume(1s, [](std::string_view) {}),
            ShmRing::Poll::kPoisoned);
}

TEST(ShmRingTest, ChunkedFramesReassembleInOrder) {
  HeapRing r(16);
  // Hand-built chunk stream: three pieces, last one flagged. The transport
  // produces exactly this shape for frames above maxExtentPayload().
  const std::string pieces[] = {std::string(300, 'a'), std::string(17, 'b'),
                                std::string(900, 'c')};
  for (std::size_t i = 0; i < 3; ++i) {
    char* dst = r.producer.beginWrite(
        static_cast<std::uint32_t>(pieces[i].size()), 1s);
    ASSERT_NE(dst, nullptr);
    std::memcpy(dst, pieces[i].data(), pieces[i].size());
    r.producer.commitWrite(static_cast<std::uint32_t>(pieces[i].size()),
                           kSlotChunk, i == 2 ? kChunkLast : 0);
  }
  std::string got;
  // Non-final chunks are consumed internally: ONE poll yields the frame.
  EXPECT_EQ(r.consumer.consume(1s, [&](std::string_view p) { got.assign(p); }),
            ShmRing::Poll::kFrame);
  EXPECT_EQ(got, pieces[0] + pieces[1] + pieces[2]);
  // The scratch resets between frames.
  produceFrame(r.producer, "next");
  EXPECT_EQ(consumeFrame(r.consumer), "next");
}

TEST(ShmRingTest, CrossThreadBackpressuredStream) {
  // Real two-thread traffic through a deliberately tiny ring: constant
  // wrap, constant backpressure, both futex park paths exercised.
  HeapRing r(16);
  constexpr int kFrames = 5000;
  std::thread producer([&] {
    Rng rng(7);
    for (int i = 0; i < kFrames; ++i) {
      std::string payload =
          std::to_string(i) + ":" +
          std::string(static_cast<std::size_t>(rng.uniformInt(0, 1500)), 'p');
      payload.resize(std::min<std::size_t>(
          payload.size(), r.producer.maxExtentPayload()));
      char* dst = r.producer.beginWrite(
          static_cast<std::uint32_t>(payload.size()), 10s);
      ASSERT_NE(dst, nullptr);
      std::memcpy(dst, payload.data(), payload.size());
      r.producer.commitWrite(static_cast<std::uint32_t>(payload.size()),
                             kSlotMsg, 0);
    }
  });
  for (int i = 0; i < kFrames; ++i) {
    std::string got;
    ASSERT_EQ(r.consumer.consume(10s,
                                 [&](std::string_view p) { got.assign(p); }),
              ShmRing::Poll::kFrame)
        << "frame " << i;
    ASSERT_EQ(got.substr(0, got.find(':')), std::to_string(i));
  }
  producer.join();
}

// ---------------------------------------------------------------------------
// End-to-end negotiation over a real Unix socket: the client wrapper from
// unixSocketConnect against a server that adopts (new daemon), declines
// (policy), or ignores the offer entirely (old daemon).
// ---------------------------------------------------------------------------

Message helloMessage() {
  Message m;
  m.type = MsgType::kHello;
  m.requestId = 1;
  m.context = "cosmo-5min";
  m.text = "analysis";
  return m;
}

class ShmNegotiationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/simfs_shm_test_" + std::to_string(::getpid()) + ".sock";
  }
  std::string path_;
};

/// Server-side session holder: the negotiation may swap the transport
/// under the session (socket -> shm), mirroring the daemon's Session.
struct ServerSession {
  std::unique_ptr<Transport> transport;
};

TEST_F(ShmNegotiationTest, UpgradesToShmAndEchoesOverRing) {
  UnixSocketServer server(path_);
  std::mutex mu;
  std::vector<std::shared_ptr<ServerSession>> sessions;

  ASSERT_TRUE(
      server
          .start([&](std::unique_ptr<Transport> conn) {
            auto session = std::make_shared<ServerSession>();
            session->transport = std::move(conn);
            auto* raw = session->transport.get();
            // Mirror the daemon's hello dispatch: adopt the offered
            // segment on the delivery thread, ack THROUGH the swapped
            // transport (over the ring — that IS the accept signal),
            // then echo everything else.
            raw->setHandler([&, session](Message&& m) {
              if (m.type == MsgType::kHello) {
                if ((m.intArg2 & kHelloCapShm) != 0 && !m.text.empty()) {
                  auto shm = shmAdoptServer(m.text, session->transport);
                  if (shm) {
                    // Swap under `mu`: the test body reads this transport
                    // through `sessions` after the replies settle, and the
                    // in-process client/server segment mappings live at
                    // different addresses, so ring-mediated ordering is
                    // not something a sanitizer can see — use the lock.
                    std::lock_guard swapLock(mu);
                    session->transport = std::move(shm);
                    // Weak capture, like the daemon's installSessionHandlers:
                    // the handler lives inside session->transport, so an
                    // owning capture would be a shared_ptr cycle.
                    std::weak_ptr<ServerSession> weak = session;
                    session->transport->setHandler([weak](Message&& e) {
                      if (auto s = weak.lock()) {
                        e.type = MsgType::kAcquireAck;
                        (void)s->transport->send(e);
                      }
                    });
                  }
                }
                Message ack;
                ack.type = MsgType::kHelloAck;
                ack.requestId = m.requestId;
                ack.intArg = 42;
                if ((m.intArg2 & kHelloCapShm) != 0) {
                  ack.intArg2 = static_cast<std::int64_t>(
                      session->transport->kindName() == "shm"
                          ? TransportChoice::kShm
                          : TransportChoice::kSocket);
                }
                (void)session->transport->send(ack);
                return;
              }
              m.type = MsgType::kAcquireAck;
              (void)session->transport->send(m);
            });
            std::lock_guard lock(mu);
            sessions.push_back(std::move(session));
          })
          .isOk());

  auto client = unixSocketConnect(path_);
  ASSERT_TRUE(client.isOk());

  std::mutex rmu;
  std::condition_variable rcv;
  std::vector<Message> replies;
  (*client)->setHandler([&](Message&& m) {
    std::lock_guard lock(rmu);
    replies.push_back(std::move(m));
    rcv.notify_all();
  });

  // Pipeline traffic right behind the hello: the wrapper must buffer it
  // until the handshake settles and deliver it in order afterwards.
  ASSERT_TRUE((*client)->send(helloMessage()).isOk());
  constexpr int kFollowUps = 100;
  for (int i = 0; i < kFollowUps; ++i) {
    Message m;
    m.type = MsgType::kAcquireReq;
    m.requestId = static_cast<std::uint64_t>(100 + i);
    m.text = std::string(static_cast<std::size_t>(i) * 11, 'q');
    ASSERT_TRUE((*client)->send(m).isOk());
  }

  {
    std::unique_lock lock(rmu);
    ASSERT_TRUE(rcv.wait_for(lock, 10s, [&] {
      return replies.size() == 1 + kFollowUps;
    }));
  }
  EXPECT_EQ(replies[0].type, MsgType::kHelloAck);
  EXPECT_EQ(replies[0].intArg2,
            static_cast<std::int64_t>(TransportChoice::kShm));
  EXPECT_EQ((*client)->kindName(), "shm");
  for (int i = 0; i < kFollowUps; ++i) {
    EXPECT_EQ(replies[1 + static_cast<std::size_t>(i)].requestId,
              static_cast<std::uint64_t>(100 + i));
    EXPECT_EQ(replies[1 + static_cast<std::size_t>(i)].text.size(),
              static_cast<std::size_t>(i) * 11);
  }
  {
    std::lock_guard lock(mu);
    ASSERT_EQ(sessions.size(), 1u);
    EXPECT_EQ(sessions[0]->transport->kindName(), "shm");
  }

  // Oversized frames ride the chunk path of the same ring.
  Message big;
  big.type = MsgType::kAcquireReq;
  big.requestId = 9000;
  big.text = std::string(3u << 20, 'Z');
  ASSERT_TRUE((*client)->send(big).isOk());
  {
    std::unique_lock lock(rmu);
    ASSERT_TRUE(rcv.wait_for(lock, 10s, [&] {
      return replies.size() == 2 + kFollowUps;
    }));
  }
  EXPECT_EQ(replies.back().text, big.text);

  (*client)->close();
  server.stop();
}

TEST_F(ShmNegotiationTest, OldDaemonAnswerOnSocketSettlesDowngrade) {
  // A pre-negotiation daemon ignores the capability bit and the key, and
  // answers over the socket. The wrapper must settle to the socket and
  // flush pipelined sends in order.
  UnixSocketServer server(path_);
  std::mutex mu;
  std::vector<std::unique_ptr<Transport>> conns;
  ASSERT_TRUE(server
                  .start([&](std::unique_ptr<Transport> conn) {
                    auto* raw = conn.get();
                    raw->setHandler([raw](Message&& m) {
                      // Old daemon: echoes without touching intArg2.
                      m.type = m.type == MsgType::kHello
                                   ? MsgType::kHelloAck
                                   : MsgType::kAcquireAck;
                      m.intArg2 = 0;
                      (void)raw->send(m);
                    });
                    std::lock_guard lock(mu);
                    conns.push_back(std::move(conn));
                  })
                  .isOk());

  auto client = unixSocketConnect(path_);
  ASSERT_TRUE(client.isOk());
  std::mutex rmu;
  std::condition_variable rcv;
  std::vector<Message> replies;
  (*client)->setHandler([&](Message&& m) {
    std::lock_guard lock(rmu);
    replies.push_back(std::move(m));
    rcv.notify_all();
  });
  ASSERT_TRUE((*client)->send(helloMessage()).isOk());
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.type = MsgType::kAcquireReq;
    m.requestId = static_cast<std::uint64_t>(200 + i);
    ASSERT_TRUE((*client)->send(m).isOk());
  }
  {
    std::unique_lock lock(rmu);
    ASSERT_TRUE(
        rcv.wait_for(lock, 10s, [&] { return replies.size() == 11u; }));
  }
  EXPECT_EQ(replies[0].type, MsgType::kHelloAck);
  EXPECT_EQ(replies[0].intArg2,
            static_cast<std::int64_t>(TransportChoice::kLegacy));
  EXPECT_EQ((*client)->kindName(), "socket");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(replies[1 + static_cast<std::size_t>(i)].requestId,
              static_cast<std::uint64_t>(200 + i));
  }
  (*client)->close();
  server.stop();
}

TEST_F(ShmNegotiationTest, EnvKnobSuppressesTheOfferEntirely) {
  // SIMFS_SHM=0 must put byte-identical legacy hellos on the wire: no
  // capability bit, text untouched.
  ::setenv("SIMFS_SHM", "0", 1);
  UnixSocketServer server(path_);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Message> heard;
  std::vector<std::unique_ptr<Transport>> conns;
  ASSERT_TRUE(server
                  .start([&](std::unique_ptr<Transport> conn) {
                    auto* raw = conn.get();
                    raw->setHandler([&, raw](Message&& m) {
                      Message ack;
                      ack.type = MsgType::kHelloAck;
                      ack.requestId = m.requestId;
                      std::lock_guard lock(mu);
                      heard.push_back(std::move(m));
                      (void)raw->send(ack);
                      cv.notify_all();
                    });
                    std::lock_guard lock(mu);
                    conns.push_back(std::move(conn));
                  })
                  .isOk());

  auto client = unixSocketConnect(path_);
  ASSERT_TRUE(client.isOk());
  std::mutex rmu;
  std::condition_variable rcv;
  bool acked = false;
  (*client)->setHandler([&](Message&&) {
    std::lock_guard lock(rmu);
    acked = true;
    rcv.notify_all();
  });
  const auto hello = helloMessage();
  ASSERT_TRUE((*client)->send(hello).isOk());
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return !heard.empty(); }));
  }
  // The wire bytes are pinned via the deterministic codec: identical
  // fields encode identically, so PR 6 daemons see PR 6 hellos.
  EXPECT_EQ(encode(heard[0]), encode(hello));
  EXPECT_EQ(heard[0].intArg2 & kHelloCapShm, 0);
  {
    std::unique_lock lock(rmu);
    ASSERT_TRUE(rcv.wait_for(lock, 5s, [&] { return acked; }));
  }
  EXPECT_EQ((*client)->kindName(), "socket");
  (*client)->close();
  server.stop();
  ::unsetenv("SIMFS_SHM");
}

TEST_F(ShmNegotiationTest, AdoptRejectsMissingAndForgedSegments) {
  auto [serverEnd, clientEnd] = makeInProcPair();

  // Missing name.
  EXPECT_EQ(shmAdoptServer("/simfs-test-no-such-segment", serverEnd),
            nullptr);
  EXPECT_NE(serverEnd, nullptr);  // declined: socket untouched

  // Name that is not even a shm key.
  EXPECT_EQ(shmAdoptServer("not-absolute", serverEnd), nullptr);
  EXPECT_EQ(shmAdoptServer("", serverEnd), nullptr);
  EXPECT_EQ(shmAdoptServer(std::string(300, 'k'), serverEnd), nullptr);

  // A real segment with a forged header: wrong magic, hostile ringBytes.
  const std::string key =
      "/simfs-test-forged-" + std::to_string(::getpid());
  const int fd = ::shm_open(key.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 1 << 16), 0);
  void* base = ::mmap(nullptr, 1 << 16, PROT_READ | PROT_WRITE, MAP_SHARED,
                      fd, 0);
  ASSERT_NE(base, MAP_FAILED);
  ::close(fd);
  auto* h = new (base) ShmSegmentHdr();
  std::memcpy(h->magic, "SIMFSHM1", 8);
  h->version = kShmVersion;
  h->slotBytes = kShmSlotBytes;
  h->ringBytes = ~std::uint64_t{0};  // would overflow every bounds check
  EXPECT_EQ(shmAdoptServer(key, serverEnd), nullptr);
  std::memcpy(h->magic, "BADMAGIC", 8);
  h->ringBytes = 64 * kShmSlotBytes;
  EXPECT_EQ(shmAdoptServer(key, serverEnd), nullptr);
  ::munmap(base, 1 << 16);
  ::shm_unlink(key.c_str());

  EXPECT_NE(serverEnd, nullptr);
  serverEnd->close();
  clientEnd->close();
}

TEST_F(ShmNegotiationTest, SocketLossAfterUpgradeFiresCloseHandler) {
  // On shm the socket carries no traffic, but it stays the liveness
  // signal: the server dropping it must tear the shm session down like
  // any socket loss.
  UnixSocketServer server(path_);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::shared_ptr<ServerSession>> sessions;
  ASSERT_TRUE(
      server
          .start([&](std::unique_ptr<Transport> conn) {
            auto session = std::make_shared<ServerSession>();
            session->transport = std::move(conn);
            auto* raw = session->transport.get();
            raw->setHandler([&, session](Message&& m) {
              if (m.type != MsgType::kHello) return;
              if ((m.intArg2 & kHelloCapShm) != 0 && !m.text.empty()) {
                auto shm = shmAdoptServer(m.text, session->transport);
                if (shm) session->transport = std::move(shm);
              }
              Message ack;
              ack.type = MsgType::kHelloAck;
              ack.requestId = m.requestId;
              ack.intArg2 = static_cast<std::int64_t>(
                  session->transport->kindName() == "shm"
                      ? TransportChoice::kShm
                      : TransportChoice::kSocket);
              (void)session->transport->send(ack);
            });
            std::lock_guard lock(mu);
            sessions.push_back(std::move(session));
            cv.notify_all();
          })
          .isOk());

  auto client = unixSocketConnect(path_);
  ASSERT_TRUE(client.isOk());
  std::mutex rmu;
  std::condition_variable rcv;
  bool acked = false;
  bool closed = false;
  (*client)->setHandler([&](Message&&) {
    std::lock_guard lock(rmu);
    acked = true;
    rcv.notify_all();
  });
  (*client)->setCloseHandler([&] {
    std::lock_guard lock(rmu);
    closed = true;
    rcv.notify_all();
  });
  ASSERT_TRUE((*client)->send(helloMessage()).isOk());
  {
    std::unique_lock lock(rmu);
    ASSERT_TRUE(rcv.wait_for(lock, 10s, [&] { return acked; }));
  }
  ASSERT_EQ((*client)->kindName(), "shm");

  // Server side drops the whole session (shm transport owns the socket;
  // destroying it closes the fd = the crash signal, minus the SIGKILL).
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return !sessions.empty(); }));
    sessions.clear();
  }
  {
    std::unique_lock lock(rmu);
    EXPECT_TRUE(rcv.wait_for(lock, 10s, [&] { return closed; }));
  }
  EXPECT_FALSE((*client)->isOpen());
  server.stop();
}

}  // namespace
}  // namespace simfs::msg
