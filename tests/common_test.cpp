// Unit tests for simfs::common — types, status, rng, stats, checksums,
// strings, ini, clocks.
#include "common/checksum.hpp"
#include "common/clock.hpp"
#include "common/env.hpp"
#include "common/ini.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"
#include "common/types.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

namespace simfs {
namespace {

// ----------------------------------------------------------------- types

TEST(VTimeTest, ConversionRoundTrips) {
  EXPECT_EQ(vtime::fromSeconds(1.0), vtime::kSecond);
  EXPECT_EQ(vtime::fromSeconds(0.5), 500 * vtime::kMillisecond);
  EXPECT_DOUBLE_EQ(vtime::toSeconds(3 * vtime::kSecond), 3.0);
  EXPECT_DOUBLE_EQ(vtime::toHours(2 * vtime::kHour), 2.0);
}

TEST(VTimeTest, FromSecondsRoundsToNearest) {
  EXPECT_EQ(vtime::fromSeconds(1e-9), 1);
  EXPECT_EQ(vtime::fromSeconds(1.4e-9), 1);
  EXPECT_EQ(vtime::fromSeconds(1.6e-9), 2);
}

TEST(VTimeTest, ToStringFormats) {
  EXPECT_EQ(vtime::toString(kNoTime), "never");
  EXPECT_EQ(vtime::toString(kTimeInf), "inf");
  EXPECT_EQ(vtime::toString(90 * vtime::kSecond), "1m30.000s");
  EXPECT_NE(vtime::toString(25 * vtime::kHour).find("1d1h"), std::string::npos);
}

TEST(BytesTest, Formatting) {
  EXPECT_EQ(bytes::toString(512), "512B");
  EXPECT_EQ(bytes::toString(6 * bytes::GiB), "6.00GiB");
  EXPECT_EQ(bytes::toString(bytes::TiB), "1.00TiB");
  EXPECT_DOUBLE_EQ(bytes::toGiB(6 * bytes::GiB), 6.0);
}

// ----------------------------------------------------------------- status

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.isOk());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.toString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const auto s = errNotFound("missing file");
  EXPECT_FALSE(s.isOk());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.toString(), "not_found: missing file");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(statusCodeName(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.valueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = errTimedOut("too slow");
  EXPECT_FALSE(r.isOk());
  EXPECT_EQ(r.status().code(), StatusCode::kTimedOut);
  EXPECT_EQ(r.valueOr(7), 7);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.isOk());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

// -------------------------------------------------------------------- rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialHasRoughlyRightMean) {
  Rng rng(12);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(ZipfTest, RankZeroMostPopular) {
  Rng rng(14);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfTest, SamplesInRange) {
  Rng rng(15);
  ZipfSampler zipf(7, 0.9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(rng), 7u);
}

// ------------------------------------------------------------------ stats

TEST(SummaryTest, BasicStatistics) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(SummaryTest, QuantileInterpolates) {
  Summary s;
  for (double x : {0.0, 10.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
}

TEST(SummaryTest, MedianCiContainsMedian) {
  Summary s;
  Rng rng(16);
  for (int i = 0; i < 200; ++i) s.add(rng.uniformReal(0, 100));
  const auto ci = s.medianCi95();
  EXPECT_LE(ci.lo, s.median());
  EXPECT_GE(ci.hi, s.median());
}

TEST(EmaTest, FirstObservationInitializes) {
  Ema e(0.5);
  EXPECT_FALSE(e.primed());
  e.observe(10.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EmaTest, SmoothsTowardsObservations) {
  Ema e(0.5);
  e.observe(10.0);
  e.observe(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e.observe(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 17.5);
}

TEST(EmaTest, ResetClears) {
  Ema e(0.3);
  e.observe(5.0);
  e.reset();
  EXPECT_FALSE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

// -------------------------------------------------------------- checksums

TEST(ChecksumTest, Fnv1aKnownVector) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(fnv1a64(std::string_view{}), 0xCBF29CE484222325ULL);
  // Standard test vector: "a".
  EXPECT_EQ(fnv1a64(std::string_view{"a"}), 0xAF63DC4C8601EC8CULL);
}

TEST(ChecksumTest, Crc32cKnownVector) {
  // RFC 3720 test vector: "123456789" -> 0xE3069283.
  EXPECT_EQ(crc32c(std::string_view{"123456789"}), 0xE3069283U);
}

TEST(ChecksumTest, IncrementalMatchesOneShot) {
  Fnv1a64Hasher h;
  h.update(std::string_view{"hello "});
  h.update(std::string_view{"world"});
  EXPECT_EQ(h.digest(), fnv1a64(std::string_view{"hello world"}));
}

TEST(ChecksumTest, DifferentContentDiffers) {
  EXPECT_NE(fnv1a64(std::string_view{"abc"}), fnv1a64(std::string_view{"abd"}));
  EXPECT_NE(crc32c(std::string_view{"abc"}), crc32c(std::string_view{"abd"}));
}

TEST(ChecksumTest, HexDigestFormat) {
  EXPECT_EQ(digestToHex(0x1234ABCDULL), "000000001234abcd");
}

// ---------------------------------------------------------------- strings

TEST(StringsTest, Split) {
  const auto parts = str::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(str::trim("  x y  "), "x y");
  EXPECT_EQ(str::trim("\t\n"), "");
  EXPECT_EQ(str::trim(""), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(str::startsWith("out_000.snc", "out_"));
  EXPECT_FALSE(str::startsWith("ou", "out_"));
  EXPECT_TRUE(str::endsWith("out_000.snc", ".snc"));
  EXPECT_FALSE(str::endsWith("x", ".snc"));
}

TEST(StringsTest, ParseInt) {
  EXPECT_EQ(str::parseInt("42").value(), 42);
  EXPECT_EQ(str::parseInt(" -7 ").value(), -7);
  EXPECT_FALSE(str::parseInt("12x").has_value());
  EXPECT_FALSE(str::parseInt("").has_value());
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(str::parseDouble("2.5").value(), 2.5);
  EXPECT_FALSE(str::parseDouble("2.5q").has_value());
}

TEST(StringsTest, Format) {
  EXPECT_EQ(str::format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(str::format("%05d", 42), "00042");
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(str::replaceAll("a{x}b{x}", "{x}", "Y"), "aYbY");
  EXPECT_EQ(str::replaceAll("abc", "z", "Y"), "abc");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(str::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(str::join({}, ","), "");
}

// --------------------------------------------------------------------- ini

TEST(IniTest, ParsesSectionsAndValues) {
  const auto doc = IniDoc::parse(
      "[context]\nname = cosmo\ndelta_d = 15\n; comment\n# another\n"
      "[perf]\ntau_sim_ms = 3000.5\n");
  ASSERT_TRUE(doc.isOk());
  EXPECT_EQ(doc->get("context", "name").value(), "cosmo");
  EXPECT_EQ(doc->getInt("context", "delta_d").value(), 15);
  EXPECT_DOUBLE_EQ(doc->getDouble("perf", "tau_sim_ms").value(), 3000.5);
  EXPECT_TRUE(doc->hasSection("perf"));
  EXPECT_FALSE(doc->hasSection("naming"));
}

TEST(IniTest, Defaults) {
  const auto doc = IniDoc::parse("[a]\nx = 1\n");
  ASSERT_TRUE(doc.isOk());
  EXPECT_EQ(doc->getIntOr("a", "missing", 9), 9);
  EXPECT_EQ(doc->getOr("b", "x", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(doc->getDoubleOr("a", "x", 0.0), 1.0);
}

TEST(IniTest, RejectsMalformedInput) {
  EXPECT_FALSE(IniDoc::parse("[unclosed\nx=1\n").isOk());
  EXPECT_FALSE(IniDoc::parse("keywithoutvalue\n").isOk());
  EXPECT_FALSE(IniDoc::parse("= novalue\n").isOk());
}

TEST(IniTest, KeysSorted) {
  const auto doc = IniDoc::parse("[s]\nb = 2\na = 1\n");
  ASSERT_TRUE(doc.isOk());
  const auto keys = doc->keys("s");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

// ------------------------------------------------------------------ clocks

TEST(ManualClockTest, AdvancesMonotonically) {
  ManualClock c(100);
  EXPECT_EQ(c.now(), 100);
  c.advanceTo(150);
  EXPECT_EQ(c.now(), 150);
  c.advanceBy(50);
  EXPECT_EQ(c.now(), 200);
}

TEST(RealClockTest, MovesForward) {
  RealClock c;
  const auto a = c.now();
  const auto b = c.now();
  EXPECT_GE(b, a);
}

// --------------------------------------------------------------------- env

TEST(EnvTest, ReadsVariables) {
  ::setenv("SIMFS_TEST_VAR", "hello", 1);
  EXPECT_EQ(env::get("SIMFS_TEST_VAR").value(), "hello");
  ::setenv("SIMFS_TEST_INT", "31", 1);
  EXPECT_EQ(env::getInt("SIMFS_TEST_INT").value(), 31);
  ::unsetenv("SIMFS_TEST_VAR");
  EXPECT_FALSE(env::get("SIMFS_TEST_VAR").has_value());
  EXPECT_EQ(env::getOr("SIMFS_TEST_VAR", "dflt"), "dflt");
}

}  // namespace
}  // namespace simfs
