// Cross-module integration tests beyond the worked examples: failure
// injection, kill logic, multi-context coordination, strategy-(1)
// parallelism scaling, and replay invariants swept over policies x
// patterns (TEST_P).
#include "harness/scenario.hpp"
#include "trace/replay.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace simfs {
namespace {

using simmodel::ContextConfig;
using simmodel::PerfModel;
using simmodel::PolicyKind;
using simmodel::StepGeometry;

ContextConfig baseConfig() {
  ContextConfig cfg;
  cfg.name = "itest";
  cfg.geometry = StepGeometry(1, 4, 128);
  cfg.outputStepBytes = 1;
  cfg.sMax = 8;
  cfg.perf = PerfModel(1, vtime::kSecond, 2 * vtime::kSecond);
  return cfg;
}

// ------------------------------------------------------- failure injection

/// Launcher that fails every job instantly with kRestartFailed.
class FailingLauncher final : public dv::SimLauncher {
 public:
  explicit FailingLauncher(dv::DataVirtualizer& dv) : dv_(dv) {}
  void launch(SimJobId job, const simmodel::JobSpec&) override {
    failed_.push_back(job);
  }
  void kill(SimJobId) override {}
  /// Failures are delivered outside launch() (the DV is mid-call there).
  void deliverFailures() {
    auto jobs = failed_;
    failed_.clear();
    for (const auto job : jobs) {
      dv_.simulationFinished(job, errRestartFailed("injected failure"));
    }
  }

 private:
  dv::DataVirtualizer& dv_;
  std::vector<SimJobId> failed_;
};

TEST(FailureInjectionTest, RestartFailurePropagatesToWaiter) {
  ManualClock clock;
  dv::DataVirtualizer dv(clock);
  FailingLauncher launcher(dv);
  dv.setLauncher(&launcher);
  std::vector<Status> notified;
  dv.setNotifyFn([&](ClientId, const std::string&, const Status& st) {
    notified.push_back(st);
  });
  ASSERT_TRUE(
      dv.registerContext(std::make_unique<simmodel::SyntheticDriver>(baseConfig()))
          .isOk());
  const auto client = dv.clientConnect("itest").value();
  const auto res = dv.clientOpen(client, "out_0000000005.snc");
  EXPECT_FALSE(res.available);
  launcher.deliverFailures();
  ASSERT_EQ(notified.size(), 1u);
  EXPECT_EQ(notified[0].code(), StatusCode::kRestartFailed);
  // The step is missing again; a retry launches a fresh job.
  EXPECT_FALSE(dv.isAvailable("itest", 5));
  const auto retry = dv.clientOpen(client, "out_0000000005.snc");
  EXPECT_FALSE(retry.available);
  EXPECT_EQ(dv.stats().jobsLaunched, 2u);
}

TEST(FailureInjectionTest, AnalysisSurvivesFailuresInScenario) {
  // A horizonless scenario with failing re-simulations would hang the
  // analysis forever on the first miss; the failure notification instead
  // lets it record the failure and move on (harness semantics).
  ManualClock clock;
  dv::DataVirtualizer dv(clock);
  FailingLauncher launcher(dv);
  dv.setLauncher(&launcher);
  int failures = 0;
  dv.setNotifyFn([&](ClientId, const std::string&, const Status& st) {
    if (!st.isOk()) ++failures;
  });
  ASSERT_TRUE(
      dv.registerContext(std::make_unique<simmodel::SyntheticDriver>(baseConfig()))
          .isOk());
  const auto client = dv.clientConnect("itest").value();
  for (StepIndex s = 0; s < 12; s += 4) {
    (void)dv.clientOpen(client, baseConfig().codec.outputFile(s));
    launcher.deliverFailures();
  }
  EXPECT_EQ(failures, 3);
}

// ------------------------------------------------------------- kill logic

TEST(KillLogicTest, DirectionChangeKillsUnneededPrefetches) {
  harness::ScenarioConfig cfg;
  cfg.context = baseConfig();
  harness::AnalysisSpec spec;
  // Flip direction right after the first prefetch batch launches, while
  // those simulations are still producing: 0,1,2,3 then back down.
  spec.steps = trace::makeForwardTrace(0, 4, 128);
  const auto back = trace::makeBackwardTrace(2, 3, 128);
  spec.steps.insert(spec.steps.end(), back.begin(), back.end());
  spec.tauCli = vtime::kSecond / 2;
  cfg.analyses = {spec};
  const auto res = harness::runScenario(cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_GT(res.dv.prefetchJobs, 0u);
  EXPECT_GT(res.dv.jobsKilled, 0u);  // stale forward prefetches cancelled
}

TEST(KillLogicTest, DisconnectKillsClientsPrefetches) {
  harness::ScenarioConfig cfg;
  cfg.context = baseConfig();
  harness::AnalysisSpec spec;
  spec.steps = trace::makeForwardTrace(0, 8, 128);  // ends mid-prefetch
  spec.tauCli = vtime::kMillisecond;
  cfg.analyses = {spec};
  const auto res = harness::runScenario(cfg);
  ASSERT_TRUE(res.completed);
  // The actor disconnects at the end; outstanding prefetched simulations
  // serving nobody must have been killed.
  EXPECT_GT(res.dv.jobsKilled, 0u);
}

// ----------------------------------------------------------- multi-context

TEST(MultiContextTest, ContextsAreIsolated) {
  ManualClock clock;
  dv::DataVirtualizer dv(clock);
  class Recorder final : public dv::SimLauncher {
   public:
    void launch(SimJobId, const simmodel::JobSpec& spec) override {
      contexts.push_back(spec.context);
    }
    void kill(SimJobId) override {}
    std::vector<std::string> contexts;
  } launcher;
  dv.setLauncher(&launcher);

  auto a = baseConfig();
  a.name = "ctxA";
  auto b = baseConfig();
  b.name = "ctxB";
  b.geometry = StepGeometry(1, 8, 128);  // different restart interval
  ASSERT_TRUE(dv.registerContext(std::make_unique<simmodel::SyntheticDriver>(a))
                  .isOk());
  ASSERT_TRUE(dv.registerContext(std::make_unique<simmodel::SyntheticDriver>(b))
                  .isOk());
  const auto ca = dv.clientConnect("ctxA").value();
  const auto cb = dv.clientConnect("ctxB").value();
  (void)dv.clientOpen(ca, "out_0000000005.snc");
  (void)dv.clientOpen(cb, "out_0000000005.snc");
  ASSERT_EQ(launcher.contexts.size(), 2u);
  EXPECT_EQ(launcher.contexts[0], "ctxA");
  EXPECT_EQ(launcher.contexts[1], "ctxB");
  EXPECT_EQ(dv.runningJobs("ctxA"), 1);
  EXPECT_EQ(dv.runningJobs("ctxB"), 1);
  EXPECT_EQ(dv.contextNames().size(), 2u);
}

// --------------------------------------------- strategy (1) level scaling

TEST(StrategyOneTest, ParallelismLadderShortensAnalysis) {
  // Same scenario with a flat perf model vs a strong-scaling ladder: the
  // agent raises the level (Sec. IV-B1b strategy 1), so production gets
  // faster and the analysis finishes earlier.
  auto flat = baseConfig();
  flat.perf = PerfModel(1, 2 * vtime::kSecond, 2 * vtime::kSecond);

  auto ladder = baseConfig();
  ladder.perf = PerfModel::strongScaling(1, 2 * vtime::kSecond,
                                         2 * vtime::kSecond, 3, 1.0);

  auto makeScenario = [](const ContextConfig& ctx) {
    harness::ScenarioConfig cfg;
    cfg.context = ctx;
    harness::AnalysisSpec spec;
    spec.steps = trace::makeForwardTrace(0, 64, 128);
    spec.tauCli = vtime::kMillisecond * 100;  // analysis faster than sim
    cfg.analyses = {spec};
    return cfg;
  };

  const auto flatRes = harness::runScenario(makeScenario(flat));
  const auto ladderRes = harness::runScenario(makeScenario(ladder));
  ASSERT_TRUE(flatRes.completed);
  ASSERT_TRUE(ladderRes.completed);
  EXPECT_LT(ladderRes.analyses[0].completion(),
            flatRes.analyses[0].completion());
}

// ------------------------------------------- replay invariants (TEST_P)

using ReplayParam = std::tuple<PolicyKind, trace::PatternKind>;

class ReplayInvariantTest : public ::testing::TestWithParam<ReplayParam> {};

TEST_P(ReplayInvariantTest, CountersAreConsistent) {
  const auto [policy, pattern] = GetParam();
  Rng rng(0xFACEu + static_cast<unsigned>(pattern));
  trace::PatternWorkload workload;
  workload.timelineSteps = 512;
  workload.numTraces = 10;
  const auto t = trace::makeConcatenatedPattern(rng, pattern, workload);
  const StepGeometry geometry(1, 16, 512);
  auto cache = cache::makeCache(policy, 128);
  const auto res = trace::replayTrace(t, geometry, *cache);

  EXPECT_EQ(res.accesses, t.size());
  EXPECT_EQ(res.hits + res.misses, res.accesses);
  EXPECT_EQ(res.restarts, res.misses);  // every miss restarts exactly once
  EXPECT_GE(res.simulatedSteps, res.misses);  // each restart >= 1 step
  EXPECT_LE(cache->size(), 128);
  // Interval fills bound: one restart never produces more than one
  // interval plus the boundary step.
  EXPECT_LE(res.simulatedSteps, res.restarts * 17);
}

TEST_P(ReplayInvariantTest, UnlimitedCacheReplayHitsEverything) {
  const auto [policy, pattern] = GetParam();
  Rng rngA(0xBEEF);
  Rng rngB(0xBEEF);
  trace::PatternWorkload workload;
  workload.timelineSteps = 512;
  workload.numTraces = 6;
  const auto t = trace::makeConcatenatedPattern(rngA, pattern, workload);
  const auto t2 = trace::makeConcatenatedPattern(rngB, pattern, workload);
  ASSERT_EQ(t, t2);  // generator determinism

  // With no capacity pressure nothing is ever evicted, so a second replay
  // of the same trace hits on every access, for every policy.
  const StepGeometry geometry(1, 16, 512);
  auto cache = cache::makeCache(policy, /*capacity=*/0);
  (void)trace::replayTrace(t, geometry, *cache);
  const auto warm = trace::replayTrace(t, geometry, *cache);
  EXPECT_EQ(warm.hits, warm.accesses);
  EXPECT_EQ(warm.restarts, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesTimesPatterns, ReplayInvariantTest,
    ::testing::Combine(
        ::testing::Values(PolicyKind::kLru, PolicyKind::kLirs,
                          PolicyKind::kArc, PolicyKind::kBcl, PolicyKind::kDcl,
                          PolicyKind::kFifo, PolicyKind::kRandom),
        ::testing::Values(trace::PatternKind::kForward,
                          trace::PatternKind::kBackward,
                          trace::PatternKind::kRandom)),
    [](const auto& info) {
      return std::string(simmodel::policyKindName(std::get<0>(info.param))) +
             "_" + trace::patternKindName(std::get<1>(info.param));
    });

// -------------------------------------------------- DES scenario sweeps

class ScenarioPolicyTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(ScenarioPolicyTest, TinyCacheScenarioCompletesUnderAllPolicies) {
  harness::ScenarioConfig cfg;
  cfg.context = baseConfig();
  cfg.context.policy = GetParam();
  cfg.context.cacheQuotaBytes = 8;  // 8 steps: heavy eviction
  harness::AnalysisSpec spec;
  spec.steps = trace::makeForwardTrace(0, 48, 128);
  spec.tauCli = vtime::kMillisecond * 50;
  cfg.analyses = {spec};
  const auto res = harness::runScenario(cfg);
  ASSERT_TRUE(res.completed) << simmodel::policyKindName(GetParam());
  EXPECT_EQ(res.analyses[0].failures, 0u);
  EXPECT_GT(res.dv.evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ScenarioPolicyTest,
                         ::testing::Values(PolicyKind::kLru, PolicyKind::kLirs,
                                           PolicyKind::kArc, PolicyKind::kBcl,
                                           PolicyKind::kDcl),
                         [](const auto& info) {
                           return simmodel::policyKindName(info.param);
                         });

}  // namespace
}  // namespace simfs
