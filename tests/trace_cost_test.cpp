// Unit tests for trace generation, cache replay and the Sec. V cost models.
#include "cost/cost_model.hpp"
#include "cost/workload.hpp"
#include "trace/replay.hpp"
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

namespace simfs {
namespace {

using simmodel::StepGeometry;

// ------------------------------------------------------------- generators

TEST(TraceGenTest, ForwardScan) {
  const auto t = trace::makeForwardTrace(5, 4, 100);
  EXPECT_EQ(t, (trace::Trace{5, 6, 7, 8}));
}

TEST(TraceGenTest, ForwardTruncatesAtTimelineEnd) {
  const auto t = trace::makeForwardTrace(98, 5, 100);
  EXPECT_EQ(t, (trace::Trace{98, 99}));
}

TEST(TraceGenTest, BackwardScan) {
  const auto t = trace::makeBackwardTrace(5, 4, 100);
  EXPECT_EQ(t, (trace::Trace{5, 4, 3, 2}));
}

TEST(TraceGenTest, BackwardTruncatesAtZero) {
  const auto t = trace::makeBackwardTrace(2, 5, 100);
  EXPECT_EQ(t, (trace::Trace{2, 1, 0}));
}

TEST(TraceGenTest, StridedScans) {
  EXPECT_EQ(trace::makeForwardTrace(0, 3, 100, 10), (trace::Trace{0, 10, 20}));
  EXPECT_EQ(trace::makeBackwardTrace(50, 3, 100, 20), (trace::Trace{50, 30, 10}));
}

TEST(TraceGenTest, RandomStaysInWindow) {
  Rng rng(3);
  const auto t = trace::makeRandomTrace(rng, 100, 200, 50, 1000);
  EXPECT_EQ(t.size(), 200u);
  for (const auto s : t) {
    EXPECT_GE(s, 100);
    EXPECT_LE(s, 149);
  }
}

TEST(TraceGenTest, ConcatenatedPatternSizes) {
  Rng rng(4);
  trace::PatternWorkload w;
  w.timelineSteps = 1152;
  w.numTraces = 50;
  const auto t =
      trace::makeConcatenatedPattern(rng, trace::PatternKind::kForward, w);
  // 50 traces of length U[100,400] (possibly truncated at the end).
  EXPECT_GE(t.size(), 50u * 50u);
  EXPECT_LE(t.size(), 50u * 400u);
  for (const auto s : t) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 1152);
  }
}

TEST(TraceGenTest, EcmwfLikeDistinctFilesAndSkew) {
  Rng rng(5);
  trace::EcmwfParams p;
  p.distinctFiles = 100;
  p.totalAccesses = 20000;
  const auto t = trace::makeEcmwfLikeTrace(rng, p, 1152);
  EXPECT_EQ(t.size(), 20000u);
  std::map<StepIndex, int> counts;
  for (const auto s : t) ++counts[s];
  EXPECT_LE(counts.size(), 100u);
  // Popularity skew: the most popular file dominates the median one.
  std::vector<int> freq;
  for (const auto& [_, c] : counts) freq.push_back(c);
  std::sort(freq.rbegin(), freq.rend());
  EXPECT_GT(freq.front(), 4 * freq[freq.size() / 2]);
}

TEST(TraceGenTest, ParsePatternKind) {
  EXPECT_EQ(trace::parsePatternKind("Forward").value(),
            trace::PatternKind::kForward);
  EXPECT_FALSE(trace::parsePatternKind("sideways").isOk());
  EXPECT_STREQ(trace::patternKindName(trace::PatternKind::kBackward),
               "backward");
}

TEST(TraceIoTest, SaveLoadRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("simfs_trace_" + std::to_string(::getpid()) + ".txt");
  const trace::Trace t{3, 1, 4, 1, 5};
  ASSERT_TRUE(trace::saveTrace(t, path.string()).isOk());
  const auto loaded = trace::loadTrace(path.string());
  ASSERT_TRUE(loaded.isOk());
  EXPECT_EQ(*loaded, t);
  std::filesystem::remove(path);
}

// ----------------------------------------------------------------- replay

TEST(ReplayTest, ForwardScanMissesOncePerInterval) {
  // 1 output step per timestep, restart every 4: a forward scan over 16
  // steps triggers exactly 4 re-simulations of 4..5 steps each.
  const StepGeometry g(1, 4, 16);
  auto cache = cache::makeCache(simmodel::PolicyKind::kLru, 16);
  const auto t = trace::makeForwardTrace(0, 16, 16);
  const auto r = trace::replayTrace(t, g, *cache);
  EXPECT_EQ(r.accesses, 16u);
  EXPECT_EQ(r.restarts, 4u);
  EXPECT_EQ(r.misses, 4u);
  EXPECT_EQ(r.hits, 12u);
  // Run-until-next-restart includes the boundary step: 5,5,5, then the
  // last interval is clipped by the timeline end.
  EXPECT_GE(r.simulatedSteps, 16u);
}

TEST(ReplayTest, RepeatedAccessAllHitsAfterFirst) {
  const StepGeometry g(1, 4, 16);
  auto cache = cache::makeCache(simmodel::PolicyKind::kLru, 16);
  const trace::Trace t{3, 3, 3, 3};
  const auto r = trace::replayTrace(t, g, *cache);
  EXPECT_EQ(r.misses, 1u);
  EXPECT_EQ(r.hits, 3u);
}

TEST(ReplayTest, NoIntervalFillProducesOnlyMissCost) {
  const StepGeometry g(1, 4, 16);
  auto cache = cache::makeCache(simmodel::PolicyKind::kLru, 16);
  trace::ReplayOptions opt;
  opt.fillWholeInterval = false;
  const trace::Trace t{3};
  const auto r = trace::replayTrace(t, g, *cache, opt);
  EXPECT_EQ(r.simulatedSteps, 4u);  // steps 0..3
  EXPECT_FALSE(cache->contains(2));  // neighbours not inserted
}

TEST(ReplayTest, TinyCacheThrashes) {
  const StepGeometry g(1, 4, 64);
  auto small = cache::makeCache(simmodel::PolicyKind::kLru, 4);
  auto large = cache::makeCache(simmodel::PolicyKind::kLru, 64);
  trace::Trace t;
  for (int round = 0; round < 3; ++round) {
    const auto fwd = trace::makeForwardTrace(0, 64, 64);
    t.insert(t.end(), fwd.begin(), fwd.end());
  }
  const auto rSmall = trace::replayTrace(t, g, *small);
  auto largeCopy = trace::replayTrace(t, g, *large);
  EXPECT_GT(rSmall.restarts, largeCopy.restarts);
}

// ------------------------------------------------------------ cost models

TEST(CostModelTest, ScenarioDerivedQuantities) {
  const auto s = cost::cosmoScenario();
  // 8 h at 5 min/step = 96 steps; 8533/96 -> 89 restart files.
  EXPECT_EQ(s.restartIntervalSteps(8.0), 96);
  EXPECT_EQ(s.numRestartFiles(8.0), 89);
  EXPECT_EQ(s.restartIntervalSteps(4.0), 48);
  EXPECT_NEAR(s.totalOutputGiB(), 51198.0, 1.0);  // ~50 TiB
}

TEST(CostModelTest, SimCostMatchesHandComputation) {
  const auto s = cost::cosmoScenario();
  const auto rates = cost::azureRates();
  // One output step: 20 s on 100 nodes at 2.07 $/h = 1.15 $.
  EXPECT_NEAR(cost::simCost(1, s, rates), 1.15, 1e-9);
  EXPECT_NEAR(cost::simCost(1000, s, rates), 1150.0, 1e-6);
}

TEST(CostModelTest, StoreCostMatchesHandComputation) {
  const auto rates = cost::azureRates();
  // 10 files of 6 GiB for 12 months at 0.06 $/GiB/month = 43.2 $.
  EXPECT_NEAR(cost::storeCost(10, 6.0, 12.0, rates), 43.2, 1e-9);
}

TEST(CostModelTest, OnDiskGrowsLinearlyWithPeriod) {
  const auto s = cost::cosmoScenario();
  const auto rates = cost::azureRates();
  const double c1 = cost::onDiskCost(s, 12, rates);
  const double c2 = cost::onDiskCost(s, 24, rates);
  const double c3 = cost::onDiskCost(s, 36, rates);
  EXPECT_NEAR(c2 - c1, c3 - c2, 1e-6);
  EXPECT_GT(c2, c1);
}

TEST(CostModelTest, InSituIndependentOfPeriodAndLinearInAnalyses) {
  const auto s = cost::cosmoScenario();
  const auto rates = cost::azureRates();
  std::vector<cost::AnalysisSpan> one{{100, 50}};
  std::vector<cost::AnalysisSpan> two{{100, 50}, {100, 50}};
  EXPECT_NEAR(cost::inSituCost(s, two, rates),
              2 * cost::inSituCost(s, one, rates), 1e-9);
  // 150 steps from zero at 1.15 $/step.
  EXPECT_NEAR(cost::inSituCost(s, one, rates), 150 * 1.15, 1e-6);
}

TEST(CostModelTest, SimfsBetweenExtremesForTypicalLoad) {
  const auto s = cost::cosmoScenario();
  const auto rates = cost::azureRates();
  Rng rng(42);
  const auto analyses =
      cost::makeForwardAnalyses(rng, 100, s.numOutputSteps, 100, 400);
  const auto v = cost::evaluateVgamma(s, analyses, 0.5, {});
  const double simfs = cost::simfsCost(
      s, 36, 8.0, 0.25, static_cast<std::int64_t>(v.simulatedSteps), rates);
  const double onDisk = cost::onDiskCost(s, 36, rates);
  const double inSitu = cost::inSituCost(
      s,
      analyses, rates);
  // At 3 years with 100 analyses, SimFS must beat both extremes (Fig. 1).
  EXPECT_LT(simfs, onDisk);
  EXPECT_LT(simfs, inSitu);
}

TEST(CostModelTest, ResimulationHours) {
  const auto s = cost::cosmoScenario();
  EXPECT_NEAR(cost::resimulationHours(s, 180), 1.0, 1e-9);
}

// --------------------------------------------------------------- workload

TEST(WorkloadTest, AnalysesClippedToTimeline) {
  Rng rng(6);
  const auto spans = cost::makeForwardAnalyses(rng, 200, 1000, 100, 400);
  EXPECT_EQ(spans.size(), 200u);
  for (const auto& a : spans) {
    EXPECT_GE(a.start, 0);
    EXPECT_LE(a.start + a.length, 1000);
  }
}

TEST(WorkloadTest, ZeroOverlapConcatenates) {
  const std::vector<cost::AnalysisSpan> spans{{0, 3}, {10, 3}};
  const auto t = cost::interleaveAnalyses(spans, 0.0);
  EXPECT_EQ(t, (trace::Trace{0, 1, 2, 10, 11, 12}));
}

TEST(WorkloadTest, FullOverlapInterleaves) {
  const std::vector<cost::AnalysisSpan> spans{{0, 3}, {10, 3}};
  const auto t = cost::interleaveAnalyses(spans, 1.0);
  ASSERT_EQ(t.size(), 6u);
  // Accesses alternate between the two analyses.
  EXPECT_EQ(t[0], 0);
  EXPECT_EQ(t[1], 10);
  EXPECT_EQ(t[2], 1);
}

TEST(WorkloadTest, OverlapIncreasesResimulation) {
  const auto s = cost::cosmoScenario();
  Rng rng(7);
  const auto analyses =
      cost::makeForwardAnalyses(rng, 60, s.numOutputSteps, 100, 400);
  const auto v0 = cost::evaluateVgamma(s, analyses, 0.0, {});
  const auto v100 = cost::evaluateVgamma(s, analyses, 1.0, {});
  // More interleaving -> less temporal locality -> more re-simulated steps
  // (Fig. 13's driving effect).
  EXPECT_GE(v100.simulatedSteps, v0.simulatedSteps);
}

}  // namespace
}  // namespace simfs
