// End-to-end daemon tests over real Unix-domain sockets: a DVLib client in
// this process, the daemon serving connections, a threaded fleet producing
// files — the full Fig. 4 message sequence on a live transport.
#include "analysis/trace_tool.hpp"
#include "dv/daemon.hpp"
#include "dvlib/iolib.hpp"
#include "dvlib/simfs_client.hpp"
#include "msg/transport.hpp"
#include "simulator/threaded_fleet.hpp"
#include "vfs/file_store.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace simfs::dv {
namespace {

using simmodel::ContextConfig;
using simmodel::PerfModel;
using simmodel::StepGeometry;

ContextConfig socketConfig() {
  ContextConfig cfg;
  cfg.name = "sock";
  cfg.geometry = StepGeometry(1, 4, 64);
  cfg.outputStepBytes = 64;
  cfg.sMax = 4;
  cfg.perf = PerfModel(2, 5 * vtime::kMillisecond, 10 * vtime::kMillisecond);
  return cfg;
}

class SocketDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/simfs_daemon_" + std::to_string(::getpid()) + ".sock";
    cfg_ = socketConfig();
    daemon_ = std::make_unique<Daemon>();
    fleet_ = std::make_unique<simulator::ThreadedSimulatorFleet>(
        *daemon_, store_, /*timeScale=*/1.0);
    ASSERT_TRUE(
        daemon_
            ->registerContext(std::make_unique<simmodel::SyntheticDriver>(cfg_))
            .isOk());
    fleet_->registerContext(cfg_);
    daemon_->setLauncher(fleet_.get());
    ASSERT_TRUE(daemon_->listen(path_).isOk());
  }

  void TearDown() override {
    fleet_.reset();
    daemon_.reset();
  }

  std::string path_;
  ContextConfig cfg_;
  vfs::MemFileStore store_;
  std::unique_ptr<Daemon> daemon_;
  std::unique_ptr<simulator::ThreadedSimulatorFleet> fleet_;
};

TEST_F(SocketDaemonTest, FullMissFlowOverSocket) {
  auto conn = msg::unixSocketConnect(path_);
  ASSERT_TRUE(conn.isOk());
  auto client = dvlib::SimFSClient::connect(std::move(*conn), "sock");
  ASSERT_TRUE(client.isOk()) << client.status().toString();

  dvlib::SimfsStatus status;
  ASSERT_TRUE((*client)->acquire({"out_0000000006.snc"}, &status).isOk());
  EXPECT_TRUE(store_.exists("out_0000000006.snc"));
  ASSERT_TRUE((*client)->release("out_0000000006.snc").isOk());
  (*client)->finalize();
}

TEST_F(SocketDaemonTest, MultipleConcurrentClients) {
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto conn = msg::unixSocketConnect(path_);
      if (!conn.isOk()) {
        ++failures;
        return;
      }
      auto client = dvlib::SimFSClient::connect(std::move(*conn), "sock");
      if (!client.isOk()) {
        ++failures;
        return;
      }
      // Each client walks a different region; some intervals overlap.
      for (int i = 0; i < 6; ++i) {
        const auto step = static_cast<StepIndex>(c * 4 + i);
        const auto file = socketConfig().codec.outputFile(step);
        if (!(*client)->acquire({file}).isOk() ||
            !(*client)->release(file).isOk()) {
          ++failures;
          return;
        }
      }
      (*client)->finalize();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(daemon_->stats().stepsProduced, 0u);
}

TEST_F(SocketDaemonTest, ClientDisconnectReleasesState) {
  {
    auto conn = msg::unixSocketConnect(path_);
    ASSERT_TRUE(conn.isOk());
    auto client = dvlib::SimFSClient::connect(std::move(*conn), "sock");
    ASSERT_TRUE(client.isOk());
    ASSERT_TRUE((*client)->acquire({"out_0000000002.snc"}).isOk());
    // Client vanishes while holding a reference.
    (*client)->finalize();
  }
  // Give the daemon a moment to observe the disconnect.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // A fresh client can still work; the dead client's reference is gone.
  auto conn = msg::unixSocketConnect(path_);
  ASSERT_TRUE(conn.isOk());
  auto client = dvlib::SimFSClient::connect(std::move(*conn), "sock");
  ASSERT_TRUE(client.isOk());
  ASSERT_TRUE((*client)->acquire({"out_0000000002.snc"}).isOk());
  ASSERT_TRUE((*client)->release("out_0000000002.snc").isOk());
  (*client)->finalize();
}

TEST_F(SocketDaemonTest, StatusRequestReportsCounters) {
  // Produce some activity first.
  {
    auto conn = msg::unixSocketConnect(path_);
    ASSERT_TRUE(conn.isOk());
    auto client = dvlib::SimFSClient::connect(std::move(*conn), "sock");
    ASSERT_TRUE(client.isOk());
    ASSERT_TRUE((*client)->acquire({"out_0000000001.snc"}).isOk());
    ASSERT_TRUE((*client)->release("out_0000000001.snc").isOk());
    (*client)->finalize();
  }
  // Raw kStatusReq, the simfsctl introspection path.
  auto conn = msg::unixSocketConnect(path_);
  ASSERT_TRUE(conn.isOk());
  std::mutex mu;
  std::condition_variable cv;
  bool got = false;
  msg::Message reply;
  (*conn)->setHandler([&](msg::Message&& m) {
    std::lock_guard lock(mu);
    reply = std::move(m);
    got = true;
    cv.notify_all();
  });
  msg::Message req;
  req.type = msg::MsgType::kStatusReq;
  ASSERT_TRUE((*conn)->send(req).isOk());
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return got; }));
  }
  EXPECT_EQ(reply.type, msg::MsgType::kStatusAck);
  EXPECT_NE(reply.text.find("opens="), std::string::npos);
  EXPECT_NE(reply.text.find("misses="), std::string::npos);
  EXPECT_GT(reply.intArg, 0);  // steps were produced
  ASSERT_EQ(reply.files.size(), 1u);
  EXPECT_EQ(reply.files[0], "sock");
  (*conn)->close();
}

TEST_F(SocketDaemonTest, PipelinedHelloThenOpenIsServedInOrder) {
  // A client may stream kHello and kOpenReq in one burst without waiting
  // for kHelloAck; the daemon must serve both, in order, on the context's
  // shard (the seed's synchronous handler guaranteed this too).
  auto conn = msg::unixSocketConnect(path_);
  ASSERT_TRUE(conn.isOk());
  std::mutex mu;
  std::condition_variable cv;
  std::vector<msg::Message> replies;
  (*conn)->setHandler([&](msg::Message&& m) {
    std::lock_guard lock(mu);
    replies.push_back(std::move(m));
    cv.notify_all();
  });
  msg::Message hello;
  hello.type = msg::MsgType::kHello;
  hello.requestId = 1;
  hello.context = "sock";
  hello.intArg = static_cast<std::int64_t>(msg::ClientRole::kAnalysis);
  ASSERT_TRUE((*conn)->send(hello).isOk());
  msg::Message open;
  open.type = msg::MsgType::kOpenReq;
  open.requestId = 2;
  open.files = {"out_0000000001.snc"};
  ASSERT_TRUE((*conn)->send(open).isOk());
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return replies.size() >= 2u; }));
  }
  EXPECT_EQ(replies[0].type, msg::MsgType::kHelloAck);
  EXPECT_EQ(replies[0].code, 0);
  EXPECT_EQ(replies[1].type, msg::MsgType::kOpenAck);
  EXPECT_EQ(replies[1].code, 0) << replies[1].text;
  (*conn)->close();
}

TEST_F(SocketDaemonTest, ShardStatsReportPerShardCounters) {
  // Generate some served traffic first.
  {
    auto conn = msg::unixSocketConnect(path_);
    ASSERT_TRUE(conn.isOk());
    auto client = dvlib::SimFSClient::connect(std::move(*conn), "sock");
    ASSERT_TRUE(client.isOk());
    ASSERT_TRUE((*client)->acquire({"out_0000000003.snc"}).isOk());
    ASSERT_TRUE((*client)->release("out_0000000003.snc").isOk());
    (*client)->finalize();
  }
  // The simfsctl introspection path: raw kShardStatsReq over the wire.
  auto conn = msg::unixSocketConnect(path_);
  ASSERT_TRUE(conn.isOk());
  std::mutex mu;
  std::condition_variable cv;
  bool got = false;
  msg::Message reply;
  (*conn)->setHandler([&](msg::Message&& m) {
    std::lock_guard lock(mu);
    reply = std::move(m);
    got = true;
    cv.notify_all();
  });
  msg::Message req;
  req.type = msg::MsgType::kShardStatsReq;
  ASSERT_TRUE((*conn)->send(req).isOk());
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return got; }));
  }
  EXPECT_EQ(reply.type, msg::MsgType::kShardStatsAck);
  EXPECT_EQ(static_cast<std::size_t>(reply.intArg), daemon_->shardCount());
  ASSERT_EQ(reply.files.size(), daemon_->shardCount());
  EXPECT_NE(reply.text.find("shards="), std::string::npos);
  // The one context lives on exactly one shard; that shard served the
  // traffic above and holds the produced steps.
  bool sawServing = false;
  for (const auto& line : reply.files) {
    EXPECT_NE(line.find("shard="), std::string::npos);
    if (line.find("contexts=sock") != std::string::npos) {
      sawServing = true;
      EXPECT_NE(line.find("resident_steps="), std::string::npos);
      EXPECT_EQ(line.find("served=0;"), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(sawServing);
  // The in-process view agrees with the wire view.
  const auto counters = daemon_->shardCounters();
  ASSERT_EQ(counters.size(), daemon_->shardCount());
  std::uint64_t served = 0;
  std::size_t resident = 0;
  for (const auto& c : counters) {
    served += c.served;
    resident += c.residentSteps;
  }
  EXPECT_GT(served, 0u);
  EXPECT_GT(resident, 0u);
  (*conn)->close();
}

TEST_F(SocketDaemonTest, TraceToolRunsOverLiveStack) {
  auto conn = msg::unixSocketConnect(path_);
  ASSERT_TRUE(conn.isOk());
  auto client = dvlib::SimFSClient::connect(std::move(*conn), "sock");
  ASSERT_TRUE(client.isOk());

  // Produce SNC1 fields so the analysis can reduce them.
  fleet_->setProducer([](const simmodel::JobSpec&, StepIndex step) {
    std::vector<double> field(8, static_cast<double>(step) * 0.5);
    return dvlib::encodeField(field);
  });

  analysis::TraceAnalysisTool tool(**client, store_, cfg_.codec);
  const auto report = tool.run(trace::makeForwardTrace(0, 10, 64));
  ASSERT_TRUE(report.isOk());
  EXPECT_EQ(report->accesses, 10u);
  EXPECT_EQ(report->failures, 0u);
  EXPECT_GT(report->meanOfMeans, 0.0);
  (*client)->finalize();
}

}  // namespace
}  // namespace simfs::dv
