// End-to-end daemon tests over real Unix-domain sockets: a DVLib client in
// this process, the daemon serving connections, a threaded fleet producing
// files — the full Fig. 4 message sequence on a live transport.
#include "analysis/trace_tool.hpp"
#include "dv/daemon.hpp"
#include "dvlib/iolib.hpp"
#include "dvlib/simfs_client.hpp"
#include "msg/transport.hpp"
#include "simulator/threaded_fleet.hpp"
#include "vfs/file_store.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace simfs::dv {
namespace {

using simmodel::ContextConfig;
using simmodel::PerfModel;
using simmodel::StepGeometry;

ContextConfig socketConfig() {
  ContextConfig cfg;
  cfg.name = "sock";
  cfg.geometry = StepGeometry(1, 4, 64);
  cfg.outputStepBytes = 64;
  cfg.sMax = 4;
  cfg.perf = PerfModel(2, 5 * vtime::kMillisecond, 10 * vtime::kMillisecond);
  return cfg;
}

class SocketDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/simfs_daemon_" + std::to_string(::getpid()) + ".sock";
    cfg_ = socketConfig();
    daemon_ = std::make_unique<Daemon>();
    fleet_ = std::make_unique<simulator::ThreadedSimulatorFleet>(
        *daemon_, store_, /*timeScale=*/1.0);
    ASSERT_TRUE(
        daemon_
            ->registerContext(std::make_unique<simmodel::SyntheticDriver>(cfg_))
            .isOk());
    fleet_->registerContext(cfg_);
    daemon_->setLauncher(fleet_.get());
    ASSERT_TRUE(daemon_->listen(path_).isOk());
  }

  void TearDown() override {
    fleet_.reset();
    daemon_.reset();
  }

  std::string path_;
  ContextConfig cfg_;
  vfs::MemFileStore store_;
  std::unique_ptr<Daemon> daemon_;
  std::unique_ptr<simulator::ThreadedSimulatorFleet> fleet_;
};

TEST_F(SocketDaemonTest, FullMissFlowOverSocket) {
  auto conn = msg::unixSocketConnect(path_);
  ASSERT_TRUE(conn.isOk());
  auto client = dvlib::SimFSClient::connect(std::move(*conn), "sock");
  ASSERT_TRUE(client.isOk()) << client.status().toString();

  dvlib::SimfsStatus status;
  ASSERT_TRUE((*client)->acquire({"out_0000000006.snc"}, &status).isOk());
  EXPECT_TRUE(store_.exists("out_0000000006.snc"));
  ASSERT_TRUE((*client)->release("out_0000000006.snc").isOk());
  (*client)->finalize();
}

TEST_F(SocketDaemonTest, MultipleConcurrentClients) {
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto conn = msg::unixSocketConnect(path_);
      if (!conn.isOk()) {
        ++failures;
        return;
      }
      auto client = dvlib::SimFSClient::connect(std::move(*conn), "sock");
      if (!client.isOk()) {
        ++failures;
        return;
      }
      // Each client walks a different region; some intervals overlap.
      for (int i = 0; i < 6; ++i) {
        const auto step = static_cast<StepIndex>(c * 4 + i);
        const auto file = socketConfig().codec.outputFile(step);
        if (!(*client)->acquire({file}).isOk() ||
            !(*client)->release(file).isOk()) {
          ++failures;
          return;
        }
      }
      (*client)->finalize();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(daemon_->stats().stepsProduced, 0u);
}

TEST_F(SocketDaemonTest, ClientDisconnectReleasesState) {
  {
    auto conn = msg::unixSocketConnect(path_);
    ASSERT_TRUE(conn.isOk());
    auto client = dvlib::SimFSClient::connect(std::move(*conn), "sock");
    ASSERT_TRUE(client.isOk());
    ASSERT_TRUE((*client)->acquire({"out_0000000002.snc"}).isOk());
    // Client vanishes while holding a reference.
    (*client)->finalize();
  }
  // Give the daemon a moment to observe the disconnect.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // A fresh client can still work; the dead client's reference is gone.
  auto conn = msg::unixSocketConnect(path_);
  ASSERT_TRUE(conn.isOk());
  auto client = dvlib::SimFSClient::connect(std::move(*conn), "sock");
  ASSERT_TRUE(client.isOk());
  ASSERT_TRUE((*client)->acquire({"out_0000000002.snc"}).isOk());
  ASSERT_TRUE((*client)->release("out_0000000002.snc").isOk());
  (*client)->finalize();
}

TEST_F(SocketDaemonTest, StatusRequestReportsCounters) {
  // Produce some activity first.
  {
    auto conn = msg::unixSocketConnect(path_);
    ASSERT_TRUE(conn.isOk());
    auto client = dvlib::SimFSClient::connect(std::move(*conn), "sock");
    ASSERT_TRUE(client.isOk());
    ASSERT_TRUE((*client)->acquire({"out_0000000001.snc"}).isOk());
    ASSERT_TRUE((*client)->release("out_0000000001.snc").isOk());
    (*client)->finalize();
  }
  // Raw kStatusReq, the simfsctl introspection path.
  auto conn = msg::unixSocketConnect(path_);
  ASSERT_TRUE(conn.isOk());
  std::mutex mu;
  std::condition_variable cv;
  bool got = false;
  msg::Message reply;
  (*conn)->setHandler([&](msg::Message&& m) {
    std::lock_guard lock(mu);
    reply = std::move(m);
    got = true;
    cv.notify_all();
  });
  msg::Message req;
  req.type = msg::MsgType::kStatusReq;
  ASSERT_TRUE((*conn)->send(req).isOk());
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return got; }));
  }
  EXPECT_EQ(reply.type, msg::MsgType::kStatusAck);
  EXPECT_NE(reply.text.find("opens="), std::string::npos);
  EXPECT_NE(reply.text.find("misses="), std::string::npos);
  EXPECT_GT(reply.intArg, 0);  // steps were produced
  ASSERT_EQ(reply.files.size(), 1u);
  EXPECT_EQ(reply.files[0], "sock");
  (*conn)->close();
}

TEST_F(SocketDaemonTest, PipelinedHelloThenOpenIsServedInOrder) {
  // A client may stream kHello and kOpenReq in one burst without waiting
  // for kHelloAck; the daemon must serve both, in order, on the context's
  // shard (the seed's synchronous handler guaranteed this too).
  auto conn = msg::unixSocketConnect(path_);
  ASSERT_TRUE(conn.isOk());
  std::mutex mu;
  std::condition_variable cv;
  std::vector<msg::Message> replies;
  (*conn)->setHandler([&](msg::Message&& m) {
    std::lock_guard lock(mu);
    replies.push_back(std::move(m));
    cv.notify_all();
  });
  msg::Message hello;
  hello.type = msg::MsgType::kHello;
  hello.requestId = 1;
  hello.context = "sock";
  hello.intArg = static_cast<std::int64_t>(msg::ClientRole::kAnalysis);
  ASSERT_TRUE((*conn)->send(hello).isOk());
  msg::Message open;
  open.type = msg::MsgType::kOpenReq;
  open.requestId = 2;
  open.files = {"out_0000000001.snc"};
  ASSERT_TRUE((*conn)->send(open).isOk());
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return replies.size() >= 2u; }));
  }
  EXPECT_EQ(replies[0].type, msg::MsgType::kHelloAck);
  EXPECT_EQ(replies[0].code, 0);
  EXPECT_EQ(replies[1].type, msg::MsgType::kOpenAck);
  EXPECT_EQ(replies[1].code, 0) << replies[1].text;
  (*conn)->close();
}

TEST_F(SocketDaemonTest, ShardStatsReportPerShardCounters) {
  // Generate some served traffic first.
  {
    auto conn = msg::unixSocketConnect(path_);
    ASSERT_TRUE(conn.isOk());
    auto client = dvlib::SimFSClient::connect(std::move(*conn), "sock");
    ASSERT_TRUE(client.isOk());
    ASSERT_TRUE((*client)->acquire({"out_0000000003.snc"}).isOk());
    ASSERT_TRUE((*client)->release("out_0000000003.snc").isOk());
    (*client)->finalize();
  }
  // The simfsctl introspection path: raw kShardStatsReq over the wire.
  auto conn = msg::unixSocketConnect(path_);
  ASSERT_TRUE(conn.isOk());
  std::mutex mu;
  std::condition_variable cv;
  bool got = false;
  msg::Message reply;
  (*conn)->setHandler([&](msg::Message&& m) {
    std::lock_guard lock(mu);
    reply = std::move(m);
    got = true;
    cv.notify_all();
  });
  msg::Message req;
  req.type = msg::MsgType::kShardStatsReq;
  ASSERT_TRUE((*conn)->send(req).isOk());
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return got; }));
  }
  EXPECT_EQ(reply.type, msg::MsgType::kShardStatsAck);
  EXPECT_EQ(static_cast<std::size_t>(reply.intArg), daemon_->shardCount());
  ASSERT_EQ(reply.files.size(), daemon_->shardCount());
  EXPECT_NE(reply.text.find("shards="), std::string::npos);
  // The one context lives on exactly one shard; that shard served the
  // traffic above and holds the produced steps.
  bool sawServing = false;
  for (const auto& line : reply.files) {
    EXPECT_NE(line.find("shard="), std::string::npos);
    if (line.find("contexts=sock") != std::string::npos) {
      sawServing = true;
      EXPECT_NE(line.find("resident_steps="), std::string::npos);
      EXPECT_EQ(line.find("served=0;"), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(sawServing);
  // The in-process view agrees with the wire view.
  const auto counters = daemon_->shardCounters();
  ASSERT_EQ(counters.size(), daemon_->shardCount());
  std::uint64_t served = 0;
  std::size_t resident = 0;
  for (const auto& c : counters) {
    served += c.served;
    resident += c.residentSteps;
  }
  EXPECT_GT(served, 0u);
  EXPECT_GT(resident, 0u);
  (*conn)->close();
}

TEST_F(SocketDaemonTest, ShardCountersFeedTheAutotuner) {
  auto conn = msg::unixSocketConnect(path_);
  ASSERT_TRUE(conn.isOk());
  auto client = dvlib::SimFSClient::connect(std::move(*conn), "sock");
  ASSERT_TRUE(client.isOk());
  for (StepIndex s = 0; s < 6; s += 2) {
    const std::string file = cfg_.codec.outputFile(s);
    ASSERT_TRUE((*client)->acquire({file}).isOk());
    ASSERT_TRUE((*client)->release(file).isOk());
  }
  (*client)->finalize();

  // The shard owning the context exposes the live TuneWindow feed.
  const auto counters = daemon_->shardCounters();
  const Daemon::ShardCounters* owner = nullptr;
  for (const auto& c : counters) {
    if (!c.contexts.empty()) owner = &c;
  }
  ASSERT_NE(owner, nullptr);
  EXPECT_EQ(owner->accesses, 3u);
  EXPECT_GT(owner->misses, 0u);
  EXPECT_GT(owner->resimSteps, 0u);

  // Diffing two samples yields the observation window; all-zero "prev"
  // is the first window. The tuner consumes it directly.
  const auto window = Daemon::tuneWindowOf(*owner, Daemon::ShardCounters{});
  EXPECT_EQ(window.accesses, owner->accesses);
  EXPECT_EQ(window.misses, owner->misses);
  EXPECT_EQ(window.resimulatedSteps, owner->resimSteps);
  CacheAutotuner::Config tcfg;
  tcfg.scenario = cost::cosmoScenario();
  tcfg.rates = cost::azureRates();
  tcfg.minCacheSteps = 100;
  tcfg.maxCacheSteps = tcfg.scenario.numOutputSteps;
  CacheAutotuner tuner(tcfg, 500);
  const auto decision = tuner.observe(window);
  EXPECT_GE(decision.recommendedCacheSteps, tcfg.minCacheSteps);
  EXPECT_LE(decision.recommendedCacheSteps, tcfg.maxCacheSteps);

  // And the same counters travel the wire (simfsctl stats).
  auto raw = msg::unixSocketConnect(path_);
  ASSERT_TRUE(raw.isOk());
  std::mutex mu;
  std::condition_variable cv;
  bool got = false;
  msg::Message reply;
  (*raw)->setHandler([&](msg::Message&& m) {
    std::lock_guard lock(mu);
    reply = std::move(m);
    got = true;
    cv.notify_all();
  });
  msg::Message req;
  req.type = msg::MsgType::kShardStatsReq;
  ASSERT_TRUE((*raw)->send(req).isOk());
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return got; }));
  }
  bool sawFeed = false;
  for (const auto& line : reply.files) {
    if (line.find("contexts=sock") == std::string::npos) continue;
    sawFeed = true;
    EXPECT_NE(line.find("accesses=3"), std::string::npos) << line;
    EXPECT_NE(line.find("misses="), std::string::npos) << line;
    EXPECT_NE(line.find("resim_steps="), std::string::npos) << line;
    EXPECT_NE(line.find("shed=0"), std::string::npos) << line;
  }
  EXPECT_TRUE(sawFeed);
  (*raw)->close();
}

TEST(DaemonBackpressureTest, ShedsClientRequestsOverQueueCap) {
  // A launcher that parks the (single) worker inside launch() — holding
  // the shard lock — so the shard queue backs up deterministically.
  struct BlockingLauncher final : SimLauncher {
    void launch(SimJobId, const simmodel::JobSpec&) override {
      std::unique_lock lock(mutex);
      blocked = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
    void kill(SimJobId) override {}
    std::mutex mutex;
    std::condition_variable cv;
    bool blocked = false;
    bool release = false;
  } launcher;

  Daemon::Options options;
  options.shards = 1;
  options.workers = 1;
  options.queueCap = 1;
  Daemon daemon(options);
  const auto cfg = socketConfig();
  ASSERT_TRUE(
      daemon.registerContext(std::make_unique<simmodel::SyntheticDriver>(cfg))
          .isOk());
  daemon.setLauncher(&launcher);
  EXPECT_EQ(daemon.queueCap(), 1u);

  auto conn = daemon.connectInProc();
  std::mutex mu;
  std::condition_variable cv;
  std::vector<msg::Message> replies;
  conn->setHandler([&](msg::Message&& m) {
    std::lock_guard lock(mu);
    replies.push_back(std::move(m));
    cv.notify_all();
  });
  const auto replyFor = [&](std::uint64_t id) -> const msg::Message* {
    for (const auto& r : replies) {
      if (r.requestId == id) return &r;
    }
    return nullptr;
  };

  msg::Message hello;
  hello.type = msg::MsgType::kHello;
  hello.requestId = 1;
  hello.context = "sock";
  hello.intArg = static_cast<std::int64_t>(msg::ClientRole::kAnalysis);
  ASSERT_TRUE(conn->send(hello).isOk());
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return replyFor(1) != nullptr; }));
  }

  // Open a missing step: the worker dives into launch() and stays there.
  msg::Message open;
  open.type = msg::MsgType::kOpenReq;
  open.requestId = 2;
  open.files = {cfg.codec.outputFile(0)};
  ASSERT_TRUE(conn->send(open).isOk());
  {
    std::unique_lock lock(launcher.mutex);
    ASSERT_TRUE(launcher.cv.wait_for(lock, std::chrono::seconds(5),
                                     [&] { return launcher.blocked; }));
  }

  // One request fits the queue; the next is shed with kUnavailable —
  // synchronously, while the worker is still stuck.
  open.requestId = 3;
  ASSERT_TRUE(conn->send(open).isOk());
  open.requestId = 4;
  ASSERT_TRUE(conn->send(open).isOk());
  {
    std::lock_guard lock(mu);
    const msg::Message* shedReply = replyFor(4);
    ASSERT_NE(shedReply, nullptr) << "shed reply must not wait for the worker";
    EXPECT_EQ(shedReply->type, msg::MsgType::kOpenAck);
    EXPECT_EQ(static_cast<StatusCode>(shedReply->code),
              StatusCode::kUnavailable);
    EXPECT_EQ(replyFor(3), nullptr) << "within-cap request must not be shed";
  }

  // Unblock: the queued (not shed) request is then served normally.
  {
    std::lock_guard lock(launcher.mutex);
    launcher.release = true;
  }
  launcher.cv.notify_all();
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] {
      return replyFor(2) != nullptr && replyFor(3) != nullptr;
    }));
    EXPECT_EQ(static_cast<StatusCode>(replyFor(2)->code), StatusCode::kOk);
    EXPECT_EQ(static_cast<StatusCode>(replyFor(3)->code), StatusCode::kOk);
  }
  // (Read only after the worker released the shard lock: shardCounters
  // briefly takes every shard mutex.)
  EXPECT_EQ(daemon.shardCounters()[0].shed, 1u);
  conn->close();
}

TEST_F(SocketDaemonTest, TraceToolRunsOverLiveStack) {
  auto conn = msg::unixSocketConnect(path_);
  ASSERT_TRUE(conn.isOk());
  auto client = dvlib::SimFSClient::connect(std::move(*conn), "sock");
  ASSERT_TRUE(client.isOk());

  // Produce SNC1 fields so the analysis can reduce them.
  fleet_->setProducer([](const simmodel::JobSpec&, StepIndex step) {
    std::vector<double> field(8, static_cast<double>(step) * 0.5);
    return dvlib::encodeField(field);
  });

  analysis::TraceAnalysisTool tool(**client, store_, cfg_.codec);
  const auto report = tool.run(trace::makeForwardTrace(0, 10, 64));
  ASSERT_TRUE(report.isOk());
  EXPECT_EQ(report->accesses, 10u);
  EXPECT_EQ(report->failures, 0u);
  EXPECT_GT(report->meanOfMeans, 0.0);
  (*client)->finalize();
}

}  // namespace
}  // namespace simfs::dv
