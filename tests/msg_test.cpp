// Unit tests for the DV<->DVLib protocol: message codec and transports.
#include "common/rng.hpp"
#include "msg/message.hpp"
#include "msg/transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace simfs::msg {
namespace {

Message sampleMessage() {
  Message m;
  m.type = MsgType::kAcquireReq;
  m.requestId = 77;
  m.context = "cosmo-5min";
  m.files = {"out_0000000001.snc", "out_0000000002.snc"};
  m.code = static_cast<std::int32_t>(StatusCode::kOk);
  m.intArg = 123456789;
  m.text = "hello";
  return m;
}

TEST(MessageCodecTest, RoundTrip) {
  const auto m = sampleMessage();
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, m);
}

TEST(MessageCodecTest, EmptyFieldsRoundTrip) {
  Message m;
  m.type = MsgType::kError;
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, m);
}

TEST(MessageCodecTest, NegativeIntArgSurvives) {
  Message m;
  m.type = MsgType::kOpenAck;
  m.intArg = -42;
  m.code = -7;
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(decoded->intArg, -42);
  EXPECT_EQ(decoded->code, -7);
}

TEST(MessageCodecTest, RejectsTruncatedBuffers) {
  const auto full = encode(sampleMessage());
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, full.size() / 2,
                          full.size() - 1}) {
    EXPECT_FALSE(decode(std::string_view(full).substr(0, len)).isOk())
        << "len=" << len;
  }
}

TEST(MessageCodecTest, RejectsTrailingGarbage) {
  auto buf = encode(sampleMessage());
  buf.push_back('x');
  EXPECT_FALSE(decode(buf).isOk());
}

TEST(MessageCodecTest, FramePrefixesLength) {
  const auto framed = frame("abcd");
  ASSERT_EQ(framed.size(), 8u);
  EXPECT_EQ(static_cast<unsigned char>(framed[0]), 4);
  EXPECT_EQ(framed.substr(4), "abcd");
}

// Fuzz-style robustness: arbitrary buffers must decode cleanly or fail
// cleanly — a hostile/corrupted peer cannot crash the daemon.
TEST(MessageCodecTest, FuzzedBuffersFailCleanly) {
  simfs::Rng rng(0xF022);
  for (int i = 0; i < 2000; ++i) {
    const auto len = static_cast<std::size_t>(rng.uniformInt(0, 256));
    std::string buf(len, '\0');
    for (auto& c : buf) c = static_cast<char>(rng.uniformInt(0, 255));
    const auto m = decode(buf);  // must not crash or overread
    if (m.isOk()) {
      // If it decoded, re-encoding must reproduce the buffer exactly.
      EXPECT_EQ(encode(*m), buf);
    }
  }
}

TEST(MessageCodecTest, MutatedValidBuffersFailOrRoundTrip) {
  simfs::Rng rng(0xF023);
  const auto base = encode(sampleMessage());
  for (int i = 0; i < 2000; ++i) {
    std::string buf = base;
    const auto pos = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(buf.size()) - 1));
    buf[pos] = static_cast<char>(rng.uniformInt(0, 255));
    const auto m = decode(buf);
    if (m.isOk()) {
      EXPECT_EQ(encode(*m), buf);
    }
  }
}

// --- federation wire surface (kRedirect / kRingUpdate) ----------------------

Message sampleRedirect() {
  Message m;
  m.type = MsgType::kRedirect;
  m.requestId = 41;
  m.context = "cosmo-5min";
  m.text = "dv2";  // owner node id
  m.files = {"dv0=/tmp/dv0.sock", "dv1=/tmp/dv1.sock", "dv2=/tmp/dv2.sock"};
  m.intArg = 9;  // ring version
  return m;
}

TEST(MessageCodecTest, ForwardHopCountSurvives) {
  Message m;
  m.type = MsgType::kSimFileClosed;
  m.context = "cosmo-5min";
  m.files = {"out_0000000001.snc"};
  m.hops = 1;
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, m);
  EXPECT_EQ(decoded->hops, 1u);
}

TEST(MessageCodecTest, RedirectRoundTrip) {
  const auto m = sampleRedirect();
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, m);
  EXPECT_EQ(decoded->text, "dv2");
  EXPECT_EQ(decoded->files.size(), 3u);
  EXPECT_EQ(decoded->intArg, 9);
}

TEST(MessageCodecTest, RingUpdateRoundTrip) {
  Message m;
  m.type = MsgType::kRingUpdate;
  m.requestId = 0;  // push (no matching request)
  m.text = "dv0";
  m.files = {"dv0=/tmp/dv0.sock", "dv1=/tmp/dv1.sock"};
  m.intArg = 3;
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, m);
}

TEST(MessageCodecTest, RingReqRoundTrip) {
  Message m;
  m.type = MsgType::kRingReq;
  m.requestId = 12;
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, m);
}

// Hostile-length hardening on the new messages, mirroring the PR 2 decode
// bounds: a forged ring-entry count must fail cleanly, not drive a huge
// reserve() or an overread.
TEST(MessageCodecTest, RedirectWithForgedEntryCountFailsCleanly) {
  auto buf = encode(sampleRedirect());
  // The file-count u32 sits right after the two length-prefixed strings
  // (context, text) and the fixed header (type, requestId, code, intArg,
  // intArg2, hops). Recompute its offset and forge the count sky-high
  // while keeping the buffer length unchanged.
  const std::size_t header = 2 + 8 + 4 + 8 + 8 + 2;
  const std::size_t ctxField = 4 + sampleRedirect().context.size();
  const std::size_t textField = 4 + sampleRedirect().text.size();
  const std::size_t countAt = header + ctxField + textField;
  ASSERT_LT(countAt + 4, buf.size());
  for (int i = 0; i < 4; ++i) buf[countAt + i] = static_cast<char>(0xFF);
  EXPECT_FALSE(decode(buf).isOk());
}

TEST(MessageCodecTest, RedirectTruncatedEntriesFailCleanly) {
  const auto full = encode(sampleRedirect());
  for (std::size_t cut = 1; cut < 24; ++cut) {
    EXPECT_FALSE(
        decode(std::string_view(full).substr(0, full.size() - cut)).isOk())
        << "cut=" << cut;
  }
}

// --- replica lease plane (kLeaseGrant / kLeaseRevoke / kLeaseAck) -----------

Message sampleLeaseGrant() {
  Message m;
  m.type = MsgType::kLeaseGrant;
  m.requestId = 81;
  m.context = "cosmo-5min";
  m.intArg = 7;        // lease generation
  m.text = "dv0";      // granting node's id
  m.ints = {0, 1, 2, 5, 13};  // resident StepIndex values now covered
  m.hops = 1;
  return m;
}

TEST(MessageCodecTest, LeaseGrantRoundTrip) {
  const auto m = sampleLeaseGrant();
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, m);
  // The zero-copy receive path (what the replica's dispatch actually
  // reads) sees the same generation, node id and step list.
  const auto wire = encode(m);
  const auto view = MessageView::parse(wire);
  ASSERT_TRUE(view.isOk());
  EXPECT_EQ(view->type(), MsgType::kLeaseGrant);
  EXPECT_EQ(view->intArg(), 7);
  EXPECT_EQ(view->text(), "dv0");
  EXPECT_EQ(view->intCount(), 5u);
  EXPECT_EQ(*view->intsBegin(), 0);
}

TEST(MessageCodecTest, LeaseRevokeRoundTrip) {
  Message m;
  m.type = MsgType::kLeaseRevoke;
  m.requestId = 82;
  m.context = "cosmo-5min";
  m.intArg = 8;  // generation, already bumped past outstanding grants
  m.text = "dv0";
  m.ints = {5};  // the step about to be evicted
  m.hops = 1;
  auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, m);

  // An EMPTY step list is the whole-context wipe used for resync after a
  // peer link re-establishes — it must survive the wire distinctly from
  // "no ints field at all" ever meaning something else.
  m.ints.clear();
  decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, m);
  EXPECT_TRUE(decoded->ints.empty());
}

TEST(MessageCodecTest, LeaseAckRoundTrip) {
  Message m;
  m.type = MsgType::kLeaseAck;
  m.requestId = 82;
  m.context = "cosmo-5min";
  m.code = static_cast<std::int32_t>(StatusCode::kOk);
  m.intArg = 8;   // echoed generation
  m.intArg2 = 1;  // acking a revoke
  m.text = "dv1";
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, m);
  const auto wire = encode(m);
  const auto view = MessageView::parse(wire);
  ASSERT_TRUE(view.isOk());
  EXPECT_EQ(view->intArg(), 8);
  EXPECT_EQ(view->intArg2(), 1);
}

// Hostile-length hardening: the step list rides the ints field, so a
// forged count from a compromised peer must fail cleanly before any
// reserve() or overread — the lease plane is daemon-to-daemon, but a
// daemon must survive a hostile peer exactly like a hostile client.
TEST(MessageCodecTest, LeaseGrantWithForgedStepCountFailsCleanly) {
  const auto m = sampleLeaseGrant();
  auto buf = encode(m);
  const std::size_t countAt = buf.size() - (4 + 8 * m.ints.size());
  for (int i = 0; i < 4; ++i) buf[countAt + i] = static_cast<char>(0xFF);
  EXPECT_FALSE(decode(buf).isOk());
}

TEST(MessageCodecTest, LeaseGrantTruncatedStepsFailCleanly) {
  const auto full = encode(sampleLeaseGrant());
  for (std::size_t cut = 1; cut <= 4 + 8 * 5; ++cut) {
    EXPECT_FALSE(
        decode(std::string_view(full).substr(0, full.size() - cut)).isOk())
        << "cut=" << cut;
  }
}

TEST(MessageCodecTest, MutatedLeaseGrantFailsOrRoundTrips) {
  const auto base = encode(sampleLeaseGrant());
  for (std::size_t pos = 0; pos < base.size(); ++pos) {
    for (const unsigned char v : {0x00, 0x01, 0x7F, 0xFF}) {
      std::string buf = base;
      buf[pos] = static_cast<char>(v);
      const auto m = decode(buf);
      if (m.isOk()) EXPECT_EQ(encode(*m), buf);
    }
  }
}

// --- replica-extended redirect (intArg2 = R) --------------------------------

TEST(MessageCodecTest, RedirectCarriesReplicaCount) {
  auto m = sampleRedirect();
  m.intArg2 = 2;  // federation's read-replica count R
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, m);
  const auto wire = encode(m);
  const auto view = MessageView::parse(wire);
  ASSERT_TRUE(view.isOk());
  EXPECT_EQ(view->intArg2(), 2);
}

TEST(MessageCodecTest, LegacyRedirectIsBytePinned) {
  // R rides the previously-unused intArg2, so a replica-aware daemon
  // with replicas disabled (R = 0) must emit redirects byte-identical
  // to a pre-replica daemon's — old clients see nothing new, and new
  // clients decode R = 0 from old daemons.
  auto withReplicasOff = sampleRedirect();
  withReplicasOff.intArg2 = 0;  // what buildRedirect sets when R == 0
  EXPECT_EQ(encode(withReplicasOff), encode(sampleRedirect()));
  const auto decoded = decode(encode(sampleRedirect()));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(decoded->intArg2, 0);
}

// --- vectored session ops (kOpenBatchReq/Ack, kCancelReq/Ack) ---------------

Message sampleOpenBatchAck() {
  Message m;
  m.type = MsgType::kOpenBatchAck;
  m.requestId = 55;
  m.files = {"out_0000000001.snc", "out_0000000002.snc",
             "out_0000000003.snc"};
  // Per-file outcome pairs: [code*2 + available, estimated wait].
  m.ints = {1, 0, 0, 1500, static_cast<std::int64_t>(StatusCode::kOutOfRange) * 2, 0};
  m.code = static_cast<std::int32_t>(StatusCode::kOutOfRange);
  m.text = "step outside timeline";
  m.intArg = 1;     // immediately available
  m.intArg2 = 1500; // max estimated wait
  return m;
}

TEST(MessageCodecTest, OpenBatchRoundTrip) {
  Message req;
  req.type = MsgType::kOpenBatchReq;
  req.requestId = 54;
  req.files = {"out_0000000001.snc", "out_0000000002.snc"};
  const auto decodedReq = decode(encode(req));
  ASSERT_TRUE(decodedReq.isOk());
  EXPECT_EQ(*decodedReq, req);

  const auto ack = sampleOpenBatchAck();
  const auto decodedAck = decode(encode(ack));
  ASSERT_TRUE(decodedAck.isOk());
  EXPECT_EQ(*decodedAck, ack);
  EXPECT_EQ(decodedAck->ints.size(), 6u);
  EXPECT_EQ(decodedAck->ints[3], 1500);
}

TEST(MessageCodecTest, CancelRoundTrip) {
  Message req;
  req.type = MsgType::kCancelReq;
  req.requestId = 60;
  req.files = {"out_0000000009.snc", "out_0000000010.snc"};
  const auto decoded = decode(encode(req));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, req);

  Message ack;
  ack.type = MsgType::kCancelAck;
  ack.requestId = 60;
  ack.intArg = 2;  // registrations freed
  const auto decodedAck = decode(encode(ack));
  ASSERT_TRUE(decodedAck.isOk());
  EXPECT_EQ(*decodedAck, ack);
}

TEST(MessageCodecTest, NegativeIntsSurvive) {
  Message m;
  m.type = MsgType::kOpenBatchAck;
  m.ints = {-1, std::numeric_limits<std::int64_t>::min(),
            std::numeric_limits<std::int64_t>::max()};
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, m);
}

// Hostile-length hardening on the new ints field, mirroring the file-list
// bounds: a forged count must fail cleanly, not drive a huge reserve() or
// an overread.
TEST(MessageCodecTest, OpenBatchAckWithForgedIntCountFailsCleanly) {
  const auto m = sampleOpenBatchAck();
  auto buf = encode(m);
  // The int-count u32 sits 4 + 8 * n bytes from the end of the buffer.
  const std::size_t countAt = buf.size() - (4 + 8 * m.ints.size());
  for (int i = 0; i < 4; ++i) buf[countAt + i] = static_cast<char>(0xFF);
  EXPECT_FALSE(decode(buf).isOk());
}

TEST(MessageCodecTest, OpenBatchAckTruncatedIntsFailCleanly) {
  const auto full = encode(sampleOpenBatchAck());
  // Cut anywhere inside the ints region (and its count prefix).
  for (std::size_t cut = 1; cut <= 4 + 8 * 6; ++cut) {
    EXPECT_FALSE(
        decode(std::string_view(full).substr(0, full.size() - cut)).isOk())
        << "cut=" << cut;
  }
}

TEST(MessageCodecTest, PingPongRoundTrip) {
  Message ping;
  ping.type = MsgType::kPing;
  ping.requestId = 9;
  ping.intArg = 41;   // heartbeat sequence
  ping.text = "dv0";  // sender's node id
  auto decoded = decode(encode(ping));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, ping);

  Message pong;
  pong.type = MsgType::kPong;
  pong.requestId = 9;
  pong.code = static_cast<std::int32_t>(StatusCode::kOk);
  pong.intArg = 41;  // echoed sequence
  pong.text = "dv1";
  decoded = decode(encode(pong));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, pong);
  // The zero-copy receive path sees the same scalars.
  const auto wire = encode(pong);
  const auto view = MessageView::parse(wire);
  ASSERT_TRUE(view.isOk());
  EXPECT_EQ(view->type(), MsgType::kPong);
  EXPECT_EQ(view->intArg(), 41);
  EXPECT_EQ(view->text(), "dv1");
}

TEST(MessageCodecTest, OpenBatchDeadlineRoundTrip) {
  Message m;
  m.type = MsgType::kOpenBatchReq;
  m.requestId = 1234;
  m.files = {"out_0000000001.snc", "out_0000000002.snc"};
  m.intArg2 = 2'500'000'000;  // relative deadline budget (ns)
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, m);
  const auto wire = encode(m);
  const auto view = MessageView::parse(wire);
  ASSERT_TRUE(view.isOk());
  EXPECT_EQ(view->intArg2(), 2'500'000'000);
}

// A heartbeat from a hostile/corrupted peer must fail cleanly: mutate
// every byte of a valid ping and require decode to reject or round-trip,
// never crash or overread (same contract the fuzz test pins for data
// messages).
TEST(MessageCodecTest, MutatedPingFailsOrRoundTrips) {
  Message ping;
  ping.type = MsgType::kPing;
  ping.requestId = 7;
  ping.intArg = 3;
  ping.text = "dv2";
  const auto base = encode(ping);
  for (std::size_t pos = 0; pos < base.size(); ++pos) {
    for (const unsigned char v : {0x00, 0x01, 0x7F, 0xFF}) {
      std::string buf = base;
      buf[pos] = static_cast<char>(v);
      const auto m = decode(buf);
      if (m.isOk()) EXPECT_EQ(encode(*m), buf);
    }
  }
}

TEST(InProcTransportTest, DeliversBothDirections) {
  auto [a, b] = makeInProcPair();
  std::vector<Message> atB;
  std::vector<Message> atA;
  b->setHandler([&](Message&& m) { atB.push_back(std::move(m)); });
  a->setHandler([&](Message&& m) { atA.push_back(std::move(m)); });
  ASSERT_TRUE(a->send(sampleMessage()).isOk());
  Message reply;
  reply.type = MsgType::kAcquireAck;
  ASSERT_TRUE(b->send(reply).isOk());
  ASSERT_EQ(atB.size(), 1u);
  EXPECT_EQ(atB[0].type, MsgType::kAcquireReq);
  ASSERT_EQ(atA.size(), 1u);
  EXPECT_EQ(atA[0].type, MsgType::kAcquireAck);
}

TEST(InProcTransportTest, BuffersMessagesSentBeforeHandler) {
  // The old contract dropped (failed) pre-handler sends, which raced
  // connection setup; they are now buffered and replayed by setHandler.
  auto [a, b] = makeInProcPair();
  ASSERT_TRUE(a->send(sampleMessage()).isOk());
  Message second;
  second.type = MsgType::kOpenReq;
  second.requestId = 99;
  ASSERT_TRUE(a->send(second).isOk());
  std::vector<Message> atB;
  b->setHandler([&](Message&& m) { atB.push_back(std::move(m)); });
  // Replay happens before setHandler returns, in send order.
  ASSERT_EQ(atB.size(), 2u);
  EXPECT_EQ(atB[0].type, MsgType::kAcquireReq);
  EXPECT_EQ(atB[1].requestId, 99u);
  // Later sends are delivered directly.
  ASSERT_TRUE(a->send(sampleMessage()).isOk());
  EXPECT_EQ(atB.size(), 3u);
}

TEST(InProcTransportTest, CloseStopsDelivery) {
  auto [a, b] = makeInProcPair();
  b->setHandler([](Message&&) {});
  a->close();
  EXPECT_FALSE(a->isOpen());
  EXPECT_EQ(a->send(sampleMessage()).code(), StatusCode::kUnavailable);
}

class UnixSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/simfs_test_" + std::to_string(::getpid()) + ".sock";
  }
  std::string path_;
};

TEST_F(UnixSocketTest, RequestReplyOverSocket) {
  UnixSocketServer server(path_);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::unique_ptr<Transport>> serverConns;

  ASSERT_TRUE(server
                  .start([&](std::unique_ptr<Transport> conn) {
                    // Echo server: bounce every message back.
                    auto* raw = conn.get();
                    raw->setHandler([raw](Message&& m) {
                      m.type = MsgType::kAcquireAck;
                      (void)raw->send(m);
                    });
                    std::lock_guard lock(mu);
                    serverConns.push_back(std::move(conn));
                    cv.notify_all();
                  })
                  .isOk());

  auto client = unixSocketConnect(path_);
  ASSERT_TRUE(client.isOk());

  std::mutex rmu;
  std::condition_variable rcv;
  std::vector<Message> replies;
  (*client)->setHandler([&](Message&& m) {
    std::lock_guard lock(rmu);
    replies.push_back(std::move(m));
    rcv.notify_all();
  });

  ASSERT_TRUE((*client)->send(sampleMessage()).isOk());
  {
    std::unique_lock lock(rmu);
    ASSERT_TRUE(rcv.wait_for(lock, std::chrono::seconds(5),
                             [&] { return !replies.empty(); }));
  }
  EXPECT_EQ(replies[0].type, MsgType::kAcquireAck);
  EXPECT_EQ(replies[0].requestId, 77u);
  EXPECT_EQ(replies[0].files.size(), 2u);

  (*client)->close();
  server.stop();
}

TEST_F(UnixSocketTest, BuffersFramesUntilServerInstallsHandler) {
  // Regression test for the documented transport race: frames that arrive
  // before the receive handler is installed must be buffered and replayed,
  // not dropped. The server deliberately delays setHandler until the
  // client's messages are already on the wire.
  UnixSocketServer server(path_);
  std::mutex mu;
  std::condition_variable cv;
  std::unique_ptr<Transport> serverConn;
  ASSERT_TRUE(server
                  .start([&](std::unique_ptr<Transport> conn) {
                    std::lock_guard lock(mu);
                    serverConn = std::move(conn);
                    cv.notify_all();
                  })
                  .isOk());
  auto client = unixSocketConnect(path_);
  ASSERT_TRUE(client.isOk());
  for (int i = 0; i < 3; ++i) {
    Message m;
    m.type = MsgType::kOpenReq;
    m.requestId = static_cast<std::uint64_t>(i);
    ASSERT_TRUE((*client)->send(m).isOk());
  }
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return serverConn != nullptr; }));
  }
  // Let the frames reach the reactor before any handler exists.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::vector<std::uint64_t> seen;
  std::mutex smu;
  std::condition_variable scv;
  serverConn->setHandler([&](Message&& m) {
    std::lock_guard lock(smu);
    seen.push_back(m.requestId);
    scv.notify_all();
  });
  {
    std::unique_lock lock(smu);
    ASSERT_TRUE(scv.wait_for(lock, std::chrono::seconds(5),
                             [&] { return seen.size() == 3u; }));
  }
  for (int i = 0; i < 3; ++i) EXPECT_EQ(seen[i], static_cast<std::uint64_t>(i));
  (*client)->close();
  server.stop();
}

TEST_F(UnixSocketTest, LargeFramesSurviveWritevBatching) {
  // Multi-megabyte frames force partial writev()s and EPOLLOUT re-arming
  // in the reactor; they must arrive intact and in order.
  UnixSocketServer server(path_);
  std::vector<std::unique_ptr<Transport>> serverConns;
  std::mutex mu;
  ASSERT_TRUE(server
                  .start([&](std::unique_ptr<Transport> conn) {
                    auto* raw = conn.get();
                    raw->setHandler([raw](Message&& m) { (void)raw->send(m); });
                    std::lock_guard lock(mu);
                    serverConns.push_back(std::move(conn));
                  })
                  .isOk());
  auto client = unixSocketConnect(path_);
  ASSERT_TRUE(client.isOk());

  std::mutex rmu;
  std::condition_variable rcv;
  std::vector<Message> replies;
  (*client)->setHandler([&](Message&& m) {
    std::lock_guard lock(rmu);
    replies.push_back(std::move(m));
    rcv.notify_all();
  });

  simfs::Rng rng(0xBEEF);
  std::vector<Message> sent;
  for (int i = 0; i < 4; ++i) {
    Message m;
    m.type = MsgType::kSimFileClosed;
    m.requestId = static_cast<std::uint64_t>(i);
    std::string payload(1u << 21, '\0');  // 2 MiB
    for (auto& c : payload) c = static_cast<char>(rng.uniformInt(0, 255));
    m.files = {payload};
    ASSERT_TRUE((*client)->send(m).isOk());
    sent.push_back(std::move(m));
  }
  {
    std::unique_lock lock(rmu);
    ASSERT_TRUE(rcv.wait_for(lock, std::chrono::seconds(20),
                             [&] { return replies.size() == sent.size(); }));
  }
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(replies[i], sent[i]) << "frame " << i;
  }
  (*client)->close();
  server.stop();
}

TEST_F(UnixSocketTest, ConnectToMissingSocketFails) {
  const auto client = unixSocketConnect("/tmp/simfs_no_such.sock");
  EXPECT_FALSE(client.isOk());
}

TEST_F(UnixSocketTest, ManyMessagesInOrder) {
  UnixSocketServer server(path_);
  std::vector<std::unique_ptr<Transport>> serverConns;
  std::mutex mu;
  ASSERT_TRUE(server
                  .start([&](std::unique_ptr<Transport> conn) {
                    auto* raw = conn.get();
                    raw->setHandler([raw](Message&& m) { (void)raw->send(m); });
                    std::lock_guard lock(mu);
                    serverConns.push_back(std::move(conn));
                  })
                  .isOk());
  auto client = unixSocketConnect(path_);
  ASSERT_TRUE(client.isOk());

  std::mutex rmu;
  std::condition_variable rcv;
  std::vector<std::uint64_t> seen;
  (*client)->setHandler([&](Message&& m) {
    std::lock_guard lock(rmu);
    seen.push_back(m.requestId);
    rcv.notify_all();
  });

  const int n = 200;
  for (int i = 0; i < n; ++i) {
    Message m;
    m.type = MsgType::kOpenReq;
    m.requestId = static_cast<std::uint64_t>(i);
    ASSERT_TRUE((*client)->send(m).isOk());
  }
  {
    std::unique_lock lock(rmu);
    ASSERT_TRUE(rcv.wait_for(lock, std::chrono::seconds(10),
                             [&] { return seen.size() == n; }));
  }
  for (int i = 0; i < n; ++i) EXPECT_EQ(seen[i], static_cast<std::uint64_t>(i));
  (*client)->close();
  server.stop();
}

TEST_F(UnixSocketTest, LegacyHelloDowngradeIsBytePinned) {
  // Negotiation must be invisible to peers that predate it. With the shm
  // offer suppressed, a client hello crosses the wire byte-identical to
  // the pre-negotiation protocol, and the ack a daemon sends back to a
  // hello that advertised nothing is byte-identical to the ack a
  // pre-negotiation daemon would have built — intArg2 stays untouched, so
  // old clients (which never read it) and new clients (which read
  // kLegacy) both settle on the socket path.
  ::setenv("SIMFS_SHM", "0", 1);
  UnixSocketServer server(path_);
  std::mutex mu;
  std::vector<std::unique_ptr<Transport>> serverConns;
  std::vector<Message> heard;
  ASSERT_TRUE(server
                  .start([&](std::unique_ptr<Transport> conn) {
                    auto* raw = conn.get();
                    raw->setHandler([&, raw](Message&& m) {
                      {
                        std::lock_guard lock(mu);
                        heard.push_back(m);
                      }
                      // The daemon's negotiation branch: answer in
                      // intArg2 only when the hello advertised caps.
                      Message ack;
                      ack.type = MsgType::kHelloAck;
                      ack.requestId = m.requestId;
                      if ((m.intArg2 & kHelloCapShm) != 0) {
                        ack.intArg2 =
                            static_cast<std::int64_t>(TransportChoice::kShm);
                      }
                      (void)raw->send(ack);
                    });
                    std::lock_guard lock(mu);
                    serverConns.push_back(std::move(conn));
                  })
                  .isOk());
  auto client = unixSocketConnect(path_);
  ASSERT_TRUE(client.isOk());
  std::mutex rmu;
  std::condition_variable rcv;
  std::vector<Message> replies;
  (*client)->setHandler([&](Message&& m) {
    std::lock_guard lock(rmu);
    replies.push_back(std::move(m));
    rcv.notify_all();
  });

  Message hello;
  hello.type = MsgType::kHello;
  hello.requestId = 9;
  hello.context = "cosmo-5min";
  hello.intArg = static_cast<std::int64_t>(ClientRole::kAnalysis);
  ASSERT_TRUE((*client)->send(hello).isOk());
  {
    std::unique_lock lock(rmu);
    ASSERT_TRUE(rcv.wait_for(lock, std::chrono::seconds(5),
                             [&] { return !replies.empty(); }));
  }
  {
    std::lock_guard lock(mu);
    ASSERT_EQ(heard.size(), 1u);
    // Client side of the pin: the hello the daemon heard encodes exactly
    // as the one the caller handed to send() — no capability bit, no shm
    // key smuggled in by the transport wrapper.
    EXPECT_EQ(encode(heard[0]), encode(hello));
    EXPECT_EQ(heard[0].intArg2 & kHelloCapShm, 0);
  }
  // Daemon side of the pin: the ack matches a hand-built pre-negotiation
  // ack byte for byte, and decodes to the kLegacy choice.
  Message oldAck;
  oldAck.type = MsgType::kHelloAck;
  oldAck.requestId = 9;
  EXPECT_EQ(encode(replies[0]), encode(oldAck));
  EXPECT_EQ(replies[0].intArg2,
            static_cast<std::int64_t>(TransportChoice::kLegacy));
  EXPECT_EQ((*client)->kindName(), "socket");
  (*client)->close();
  server.stop();
  ::unsetenv("SIMFS_SHM");
}

// --- context geometry (kGeometryReq / kGeometryAck) -------------------------

Message sampleGeometryAck() {
  Message m;
  m.type = MsgType::kGeometryAck;
  m.requestId = 91;
  m.context = "cosmo-5min";
  m.ints = {1, 4, 128, 64, 10};  // deltaD, deltaR, numTimesteps, bytes, pad
  m.files = {"out_", ".snc"};
  m.intArg = 128;  // numOutputSteps
  m.code = static_cast<std::int32_t>(StatusCode::kOk);
  m.text = "dv0";
  return m;
}

TEST(MessageCodecTest, GeometryRoundTrip) {
  Message req;
  req.type = MsgType::kGeometryReq;
  req.requestId = 90;
  req.context = "cosmo-5min";
  const auto decodedReq = decode(encode(req));
  ASSERT_TRUE(decodedReq.isOk());
  EXPECT_EQ(*decodedReq, req);

  const auto ack = sampleGeometryAck();
  const auto decodedAck = decode(encode(ack));
  ASSERT_TRUE(decodedAck.isOk());
  EXPECT_EQ(*decodedAck, ack);
  ASSERT_EQ(decodedAck->ints.size(), 5u);
  EXPECT_EQ(decodedAck->ints[3], 64);
  EXPECT_EQ(decodedAck->files[0], "out_");
}

TEST(MessageCodecTest, GeometryEnumerationRoundTrip) {
  Message m;
  m.type = MsgType::kGeometryAck;
  m.requestId = 92;
  m.files = {"ctx0", "ctx1", "ctx2"};
  m.intArg = 3;
  m.code = static_cast<std::int32_t>(StatusCode::kOk);
  m.text = "dv0";
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, m);
}

TEST(MessageCodecTest, GeometryAckWithForgedIntCountFailsCleanly) {
  const auto m = sampleGeometryAck();
  auto buf = encode(m);
  const std::size_t countAt = buf.size() - (4 + 8 * m.ints.size());
  for (int i = 0; i < 4; ++i) buf[countAt + i] = static_cast<char>(0xFF);
  EXPECT_FALSE(decode(buf).isOk());
}

TEST(MessageCodecTest, GeometryAckTruncatedFailsCleanly) {
  const auto full = encode(sampleGeometryAck());
  for (std::size_t cut = 1; cut <= 4 + 8 * 5; ++cut) {
    EXPECT_FALSE(
        decode(std::string_view(full).substr(0, full.size() - cut)).isOk())
        << "cut=" << cut;
  }
}

TEST(MessageCodecTest, MutatedGeometryAckFailsOrRoundTrips) {
  const auto base = encode(sampleGeometryAck());
  for (std::size_t pos = 0; pos < base.size(); ++pos) {
    for (const unsigned char v : {0x00, 0x01, 0x7F, 0xFF}) {
      std::string buf = base;
      buf[pos] = static_cast<char>(v);
      const auto m = decode(buf);
      if (m.isOk()) EXPECT_EQ(encode(*m), buf);
    }
  }
}

TEST(MessageCodecTest, GeometryTypesAppendAfterLegacyOps) {
  // The geometry ops were APPENDED to MsgType, so every pre-existing
  // op keeps its wire value and old-peer encodings stay byte-identical.
  // These pins fail loudly if someone reorders the enum.
  EXPECT_EQ(static_cast<std::uint16_t>(MsgType::kHello), 1);
  EXPECT_EQ(static_cast<std::uint16_t>(MsgType::kOpenBatchReq), 25);
  EXPECT_EQ(static_cast<std::uint16_t>(MsgType::kCancelReq), 27);
  EXPECT_EQ(static_cast<std::uint16_t>(MsgType::kLeaseAck), 33);
  EXPECT_EQ(static_cast<std::uint16_t>(MsgType::kGeometryReq), 34);
  EXPECT_EQ(static_cast<std::uint16_t>(MsgType::kGeometryAck), 35);
}

TEST(MessageCodecTest, ElasticMembershipTypesAppendAfterGeometryOps) {
  // The elastic-membership ops were APPENDED after the geometry ops;
  // these pins fail loudly if someone reorders the enum and silently
  // breaks mixed-version rings.
  EXPECT_EQ(static_cast<std::uint16_t>(MsgType::kRingPropose), 36);
  EXPECT_EQ(static_cast<std::uint16_t>(MsgType::kRingProposeAck), 37);
  EXPECT_EQ(static_cast<std::uint16_t>(MsgType::kRingCommit), 38);
  EXPECT_EQ(static_cast<std::uint16_t>(MsgType::kRingCommitAck), 39);
  EXPECT_EQ(static_cast<std::uint16_t>(MsgType::kContextHandoff), 40);
  EXPECT_EQ(static_cast<std::uint16_t>(MsgType::kContextHandoffAck), 41);
  // The capability bit and the advertised version range are wire
  // contract too: a renumbered cap bit would collide with kHelloCapShm /
  // kHelloCapReplica on old daemons.
  EXPECT_EQ(kHelloCapVersion, 4);
  EXPECT_EQ(kProtocolVersionMin, 1);
  EXPECT_EQ(kProtocolVersionMax, 2);
}

// --- elastic membership (kRingPropose .. kContextHandoffAck) ----------------

Message sampleRingPropose() {
  Message m;
  m.type = MsgType::kRingPropose;
  m.requestId = 101;
  m.files = {"dv0=/tmp/dv0.sock", "dv1=/tmp/dv1.sock", "dv3=/tmp/dv3.sock"};
  m.intArg = 5;  // proposed ring version
  return m;
}

Message sampleHandoff() {
  Message m;
  m.type = MsgType::kContextHandoff;
  m.requestId = 103;
  m.context = "cosmo-5min";
  m.intArg = 5;    // epoch (the proposed ring version)
  m.text = "dv0";  // sending (old owner) node id
  m.ints = {0, 1, 2, 17, 42};  // resident steps in this frame
  return m;
}

TEST(MessageCodecTest, RingProposeRoundTrip) {
  const auto m = sampleRingPropose();
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, m);
  // The ack: version echo, moved count, and the ctx:old>new work list.
  Message ack;
  ack.type = MsgType::kRingProposeAck;
  ack.requestId = 101;
  ack.intArg = 5;
  ack.intArg2 = 2;
  ack.files = {"cosmo-5min:dv0>dv3", "ocean-1h:dv1>dv3"};
  ack.text = "dv0";
  const auto ackBack = decode(encode(ack));
  ASSERT_TRUE(ackBack.isOk());
  EXPECT_EQ(*ackBack, ack);
}

TEST(MessageCodecTest, RingCommitRoundTrip) {
  // A commit is self-contained (same payload shape as the propose): a
  // node that missed the propose can still apply it.
  auto m = sampleRingPropose();
  m.type = MsgType::kRingCommit;
  m.requestId = 102;
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, m);
  Message ack;
  ack.type = MsgType::kRingCommitAck;
  ack.requestId = 102;
  ack.intArg = 5;
  ack.text = "dv1";
  const auto ackBack = decode(encode(ack));
  ASSERT_TRUE(ackBack.isOk());
  EXPECT_EQ(*ackBack, ack);
}

TEST(MessageCodecTest, ContextHandoffFramesRoundTrip) {
  // Data frame: intArg2 bit0 clear, ints = resident steps.
  const auto data = sampleHandoff();
  const auto dataBack = decode(encode(data));
  ASSERT_TRUE(dataBack.isOk());
  EXPECT_EQ(*dataBack, data);
  // Final frame: intArg2 bit0 set, ints = [leaseGen, refs, (step, n)...].
  Message fin = sampleHandoff();
  fin.intArg2 = 1;
  fin.ints = {9, 3, 17, 2, 42, 1};
  const auto finBack = decode(encode(fin));
  ASSERT_TRUE(finBack.isOk());
  EXPECT_EQ(*finBack, fin);
  // The ack, both shapes: per-frame ok and the final (intArg2 = 1)
  // commit-point ack, plus an epoch-fence rejection.
  Message ack;
  ack.type = MsgType::kContextHandoffAck;
  ack.requestId = 103;
  ack.context = "cosmo-5min";
  ack.intArg = 5;
  ack.intArg2 = 1;
  ack.text = "dv3";
  const auto ackBack = decode(encode(ack));
  ASSERT_TRUE(ackBack.isOk());
  EXPECT_EQ(*ackBack, ack);
  ack.code = static_cast<std::int32_t>(StatusCode::kFailedPrecondition);
  ack.text = "dv: stale handoff epoch 4 (committed v5)";
  const auto rejBack = decode(encode(ack));
  ASSERT_TRUE(rejBack.isOk());
  EXPECT_EQ(*rejBack, ack);
}

TEST(MessageCodecTest, RingProposeWithForgedEntryCountFailsCleanly) {
  auto buf = encode(sampleRingPropose());
  // files-count u32 follows the fixed header and the two (empty)
  // length-prefixed strings — same layout walk as the redirect pin.
  const std::size_t header = 2 + 8 + 4 + 8 + 8 + 2;
  const std::size_t countAt = header + 4 + 4;  // empty context + empty text
  ASSERT_LT(countAt + 4, buf.size());
  for (int i = 0; i < 4; ++i) buf[countAt + i] = static_cast<char>(0xFF);
  EXPECT_FALSE(decode(buf).isOk());
}

TEST(MessageCodecTest, ContextHandoffTruncatedFailsCleanly) {
  const auto full = encode(sampleHandoff());
  for (std::size_t cut = 1; cut < 24 && cut < full.size(); ++cut) {
    EXPECT_FALSE(
        decode(std::string_view(full).substr(0, full.size() - cut)).isOk())
        << "cut=" << cut;
  }
}

TEST(MessageCodecTest, MutatedHandoffFailsOrRoundTrips) {
  const auto base = encode(sampleHandoff());
  for (std::size_t pos = 0; pos < base.size(); ++pos) {
    for (const unsigned char v : {0x00, 0x01, 0x7F, 0xFF}) {
      std::string buf = base;
      buf[pos] = static_cast<char>(v);
      const auto m = decode(buf);
      // Rejected cleanly, or accepted AND re-encodes to the same bytes —
      // never a silently-truncated step list mid-handoff.
      if (m.isOk()) EXPECT_EQ(encode(*m), buf);
    }
  }
}

TEST(MessageCodecTest, VersionedHelloIsAdditive) {
  // The version handshake rides existing fields (a cap bit + the ints
  // vector), so a hello WITHOUT it must encode byte-identically to the
  // pre-negotiation hello — pinned here from the encode side; the
  // socket-level downgrade pin covers the daemon's answer.
  Message legacy;
  legacy.type = MsgType::kHello;
  legacy.requestId = 9;
  legacy.context = "cosmo-5min";
  legacy.intArg = static_cast<std::int64_t>(ClientRole::kAnalysis);
  Message versioned = legacy;
  versioned.intArg2 |= kHelloCapVersion;
  versioned.ints = {kProtocolVersionMin, kProtocolVersionMax};
  EXPECT_NE(encode(versioned), encode(legacy));
  versioned.intArg2 &= ~kHelloCapVersion;
  versioned.ints.clear();
  EXPECT_EQ(encode(versioned), encode(legacy));
  // And the versioned form survives the codec.
  Message again = legacy;
  again.intArg2 |= kHelloCapVersion;
  again.ints = {kProtocolVersionMin, kProtocolVersionMax};
  const auto decoded = decode(encode(again));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, again);
}

TEST(MessageCodecTest, LegacyAckBytesUnchangedByGeometryOps) {
  // A lease ack (the last pre-geometry op) built today must encode to
  // the exact bytes a pre-geometry build produced: same type id, same
  // field order, no new fields smuggled into the frame.
  Message m;
  m.type = MsgType::kLeaseAck;
  m.requestId = 82;
  m.context = "cosmo-5min";
  m.code = static_cast<std::int32_t>(StatusCode::kOk);
  m.intArg = 8;
  m.intArg2 = 1;
  m.text = "dv1";
  const auto wire = encode(m);
  // Type id is the first field after the fixed header layout the codec
  // uses; pin it through a decode (layout-agnostic) plus the enum pin
  // above (layout-defining).
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(decoded->type, MsgType::kLeaseAck);
  EXPECT_EQ(*decoded, m);
}

}  // namespace
}  // namespace simfs::msg
