// Unit and property tests for the replacement policies (Sec. III-D).
#include "cache/arc.hpp"
#include "cache/cache.hpp"
#include "cache/cost_aware.hpp"
#include "cache/lirs.hpp"
#include "cache/lru.hpp"
#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace simfs::cache {
namespace {

using simmodel::PolicyKind;

StepIndex k(int i) { return i; }

// ------------------------------------------------------------ LRU behaviour

TEST(LruTest, EvictsLeastRecentlyUsed) {
  LruCache c(2);
  c.access(k(1), 1);
  c.access(k(2), 1);
  const auto out = c.access(k(3), 1);
  ASSERT_EQ(out.evicted.size(), 1u);
  EXPECT_EQ(out.evicted[0], k(1));
  EXPECT_TRUE(c.contains(k(2)));
  EXPECT_TRUE(c.contains(k(3)));
}

TEST(LruTest, HitRefreshesRecency) {
  LruCache c(2);
  c.access(k(1), 1);
  c.access(k(2), 1);
  c.access(k(1), 1);  // refresh 1
  const auto out = c.access(k(3), 1);
  ASSERT_EQ(out.evicted.size(), 1u);
  EXPECT_EQ(out.evicted[0], k(2));
}

TEST(LruTest, PinnedEntriesSkipped) {
  LruCache c(2);
  c.access(k(1), 1);
  c.access(k(2), 1);
  c.pin(k(1));
  const auto out = c.access(k(3), 1);
  ASSERT_EQ(out.evicted.size(), 1u);
  EXPECT_EQ(out.evicted[0], k(2));  // LRU is pinned, next victim chosen
  c.unpin(k(1));
  const auto out2 = c.access(k(4), 1);
  EXPECT_EQ(out2.evicted[0], k(1));
}

TEST(LruTest, AllPinnedOverflows) {
  LruCache c(2);
  c.access(k(1), 1);
  c.access(k(2), 1);
  c.pin(k(1));
  c.pin(k(2));
  const auto out = c.access(k(3), 1);
  EXPECT_TRUE(out.evicted.empty());
  EXPECT_EQ(c.size(), 3);  // transient overflow
  c.unpin(k(1));
  const auto out2 = c.access(k(4), 1);
  EXPECT_EQ(out2.evicted.size(), 2u);  // drains back to capacity
  EXPECT_EQ(c.size(), 2);
}

// ----------------------------------------------------------- FIFO behaviour

TEST(FifoTest, HitDoesNotRefresh) {
  FifoCache c(2);
  c.access(k(1), 1);
  c.access(k(2), 1);
  c.access(k(1), 1);  // hit, but insertion order unchanged
  const auto out = c.access(k(3), 1);
  ASSERT_EQ(out.evicted.size(), 1u);
  EXPECT_EQ(out.evicted[0], k(1));
}

// --------------------------------------------------------- RANDOM behaviour

TEST(RandomTest, EvictsSomeUnpinnedEntry) {
  RandomCache c(3, 77);
  c.access(k(1), 1);
  c.access(k(2), 1);
  c.access(k(3), 1);
  c.pin(k(2));
  const auto out = c.access(k(4), 1);
  ASSERT_EQ(out.evicted.size(), 1u);
  EXPECT_NE(out.evicted[0], k(2));
  EXPECT_TRUE(c.contains(k(2)));
}

// ------------------------------------------------------------ BCL behaviour

TEST(BclTest, SparesCostlyLruEvictsCheaperRecent) {
  BclCache c(3);
  c.access(k(1), /*cost=*/10);  // LRU, expensive
  c.access(k(2), /*cost=*/2);   // cheaper, more recent
  c.access(k(3), /*cost=*/5);
  const auto out = c.access(k(4), 1);
  ASSERT_EQ(out.evicted.size(), 1u);
  EXPECT_EQ(out.evicted[0], k(2));  // first cheaper-than-LRU from LRU end
  EXPECT_TRUE(c.contains(k(1)));
}

TEST(BclTest, FallsBackToLruWhenItIsCheapest) {
  BclCache c(2);
  c.access(k(1), 1);   // LRU, cheapest
  c.access(k(2), 10);
  const auto out = c.access(k(3), 5);
  ASSERT_EQ(out.evicted.size(), 1u);
  EXPECT_EQ(out.evicted[0], k(1));
}

TEST(BclTest, DepreciatesSparedLruImmediately) {
  BclCache c(2);
  c.access(k(1), /*cost=*/3);
  c.access(k(2), /*cost=*/2);
  // Miss: k2 (cost 2 < 3) evicted instead of LRU k1; k1 depreciates to 1.
  (void)c.access(k(3), 2);
  EXPECT_TRUE(c.contains(k(1)));
  EXPECT_DOUBLE_EQ(c.costOf(k(1)).value(), 1.0);
  // Next miss: k1 (cost 1) is now cheapest -> evicted as plain LRU.
  const auto out = c.access(k(4), 2);
  ASSERT_EQ(out.evicted.size(), 1u);
  EXPECT_EQ(out.evicted[0], k(1));
}

// ------------------------------------------------------------ DCL behaviour

TEST(DclTest, NoDepreciationWithoutVictimReaccess) {
  DclCache c(2);
  c.access(k(1), 3);
  c.access(k(2), 2);
  (void)c.access(k(3), 2);  // k2 deflected out in place of k1
  EXPECT_DOUBLE_EQ(c.costOf(k(1)).value(), 3.0);  // deferred: no change yet
}

TEST(DclTest, DepreciatesWhenDeflectedVictimReaccessedBeforeLru) {
  DclCache c(3);
  c.access(k(1), 3.0);    // costly LRU
  c.access(k(2), 2.0);    // cheaper: deflection victim
  c.access(k(3), 0.5);    // cheapest: absorbs the post-depreciation eviction
  (void)c.access(k(4), 1.0);  // evicts k2 (first cheaper-than-LRU), spares k1
  ASSERT_TRUE(c.contains(k(1)));
  EXPECT_DOUBLE_EQ(c.costOf(k(1)).value(), 3.0);  // deferred: untouched yet
  // Re-access k2 before k1 is touched: sparing k1 hurt, so depreciate it
  // (3 - 2 = 1); the eviction this access needs falls on cheap k3.
  (void)c.access(k(2), 2.0);
  ASSERT_TRUE(c.contains(k(1)));
  EXPECT_DOUBLE_EQ(c.costOf(k(1)).value(), 1.0);
}

TEST(DclTest, NoDepreciationIfLruTouchedFirst) {
  DclCache c(2);
  c.access(k(1), 3);
  c.access(k(2), 2);
  (void)c.access(k(3), 2);  // evicts k2, spares k1
  (void)c.access(k(1), 3);  // LRU re-accessed: the sparing paid off
  (void)c.access(k(2), 2);  // victim back: must NOT depreciate
  EXPECT_DOUBLE_EQ(c.costOf(k(1)).value(), 3.0);
}

// ----------------------------------------------------------- LIRS behaviour

TEST(LirsTest, EvictsResidentHirFirst) {
  LirsCache c(4);  // Llirs=3 (25% hir fraction would be 1) with default 1%
  // Cold start: first entries become LIR.
  c.access(k(1), 1);
  c.access(k(2), 1);
  c.access(k(3), 1);
  c.access(k(4), 1);  // resident HIR (LIR set full)
  const auto out = c.access(k(5), 1);
  ASSERT_EQ(out.evicted.size(), 1u);
  EXPECT_EQ(out.evicted[0], k(4));  // HIR victim, LIR protected
  EXPECT_TRUE(c.contains(k(1)));
}

TEST(LirsTest, GhostReaccessPromotesToLir) {
  LirsCache c(4);
  c.access(k(1), 1);
  c.access(k(2), 1);
  c.access(k(3), 1);
  c.access(k(4), 1);
  (void)c.access(k(5), 1);  // evicts k4 -> ghost in stack
  (void)c.access(k(4), 1);  // ghost re-reference: promoted to LIR
  EXPECT_TRUE(c.contains(k(4)));
}

TEST(LirsTest, FallsBackToLirWhenAllHirPinned) {
  LirsCache c(3);
  c.access(k(1), 1);
  c.access(k(2), 1);
  c.access(k(3), 1);  // resident HIR
  c.pin(k(3));
  const auto out = c.access(k(4), 1);
  ASSERT_EQ(out.evicted.size(), 1u);
  EXPECT_NE(out.evicted[0], k(3));  // pinned HIR skipped, LIR demoted
}

// ------------------------------------------------------------ ARC behaviour

TEST(ArcTest, GhostHitAdaptsTarget) {
  ArcCache c(3);
  c.access(k(1), 1);
  c.access(k(2), 1);
  c.access(k(3), 1);
  (void)c.access(k(4), 1);  // evicts from T1 -> B1 ghost
  const double pBefore = c.pTarget();
  (void)c.access(k(1), 1);  // B1 ghost hit: p should grow
  EXPECT_GT(c.pTarget(), pBefore - 1e-12);
  EXPECT_TRUE(c.contains(k(1)));
}

TEST(ArcTest, FrequentEntriesProtected) {
  ArcCache c(3);
  c.access(k(1), 1);
  c.access(k(1), 1);  // k1 in T2 (frequency)
  c.access(k(2), 1);
  c.access(k(3), 1);
  (void)c.access(k(4), 1);
  EXPECT_TRUE(c.contains(k(1)));  // T2 protected while T1 has victims
}

TEST(ArcTest, PinnedVictimSkipped) {
  ArcCache c(2);
  c.access(k(1), 1);
  c.access(k(2), 1);
  c.pin(k(1));
  c.pin(k(2));
  const auto out = c.access(k(3), 1);
  EXPECT_TRUE(out.evicted.empty());
  EXPECT_EQ(c.size(), 3);
}

// ------------------------------------------------- factory + property tests

constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::kLru, PolicyKind::kLirs, PolicyKind::kArc, PolicyKind::kBcl,
    PolicyKind::kDcl, PolicyKind::kFifo, PolicyKind::kRandom};

class PolicyPropertyTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyPropertyTest, FactoryProducesNamedPolicy) {
  const auto c = makeCache(GetParam(), 8);
  EXPECT_STREQ(c->name(), simmodel::policyKindName(GetParam()));
  EXPECT_EQ(c->capacity(), 8);
}

TEST_P(PolicyPropertyTest, NeverExceedsCapacityWithoutPins) {
  const auto c = makeCache(GetParam(), 16);
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const auto key = k(static_cast<int>(rng.uniformInt(0, 99)));
    c->access(key, static_cast<double>(rng.uniformInt(1, 10)));
    ASSERT_LE(c->size(), 16) << c->name() << " step " << i;
  }
}

TEST_P(PolicyPropertyTest, HitsPlusMissesEqualsAccesses) {
  const auto c = makeCache(GetParam(), 8);
  Rng rng(100);
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    c->access(k(static_cast<int>(rng.uniformInt(0, 31))), 1.0);
  }
  EXPECT_EQ(c->stats().hits + c->stats().misses, static_cast<std::uint64_t>(n));
}

TEST_P(PolicyPropertyTest, PinnedEntriesNeverEvicted) {
  const auto c = makeCache(GetParam(), 8);
  // Pin 4 entries, then hammer with a large universe.
  for (int i = 0; i < 4; ++i) {
    c->access(k(1000 + i), 5.0);
    c->pin(k(1000 + i));
  }
  Rng rng(101);
  for (int i = 0; i < 3000; ++i) {
    c->access(k(static_cast<int>(rng.uniformInt(0, 199))), 1.0);
    for (int p = 0; p < 4; ++p) {
      ASSERT_TRUE(c->contains(k(1000 + p)))
          << c->name() << " evicted pinned entry at step " << i;
    }
  }
}

TEST_P(PolicyPropertyTest, EraseRemovesEntry) {
  const auto c = makeCache(GetParam(), 8);
  c->access(k(1), 1.0);
  EXPECT_TRUE(c->contains(k(1)));
  EXPECT_TRUE(c->erase(k(1)));
  EXPECT_FALSE(c->contains(k(1)));
  EXPECT_FALSE(c->erase(k(1)));
}

TEST_P(PolicyPropertyTest, InsertWithoutAccessCountsNoMiss) {
  const auto c = makeCache(GetParam(), 8);
  (void)c->insert(k(1), 2.0);
  EXPECT_TRUE(c->contains(k(1)));
  EXPECT_EQ(c->stats().misses, 0u);
  EXPECT_EQ(c->stats().hits, 0u);
  EXPECT_EQ(c->stats().insertions, 1u);
  // Accessing it afterwards is a hit.
  const auto out = c->access(k(1), 2.0);
  EXPECT_TRUE(out.hit);
}

TEST_P(PolicyPropertyTest, InsertEnforcesCapacity) {
  const auto c = makeCache(GetParam(), 4);
  std::size_t evictions = 0;
  for (int i = 0; i < 50; ++i) {
    evictions += c->insert(k(i), 1.0).size();
    ASSERT_LE(c->size(), 4);
  }
  EXPECT_EQ(evictions, 46u);
}

TEST_P(PolicyPropertyTest, DuplicateInsertIsNoOp) {
  const auto c = makeCache(GetParam(), 4);
  (void)c->insert(k(1), 1.0);
  (void)c->insert(k(1), 1.0);
  EXPECT_EQ(c->stats().insertions, 1u);
  EXPECT_EQ(c->size(), 1);
}

TEST_P(PolicyPropertyTest, UnlimitedCapacityNeverEvicts) {
  const auto c = makeCache(GetParam(), 0);  // unlimited
  for (int i = 0; i < 500; ++i) {
    const auto out = c->access(k(i), 1.0);
    ASSERT_TRUE(out.evicted.empty());
  }
  EXPECT_EQ(c->size(), 500);
}

TEST_P(PolicyPropertyTest, ScanWorkloadBehavesSanely) {
  // Cyclic scan over 3x the capacity: every policy must keep working and
  // evict exactly size-capacity entries net.
  const auto c = makeCache(GetParam(), 10);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 30; ++i) c->access(k(i), 1.0);
  }
  EXPECT_EQ(c->size(), 10);
  const auto& st = c->stats();
  EXPECT_EQ(st.hits + st.misses, 150u);
  EXPECT_EQ(st.evictions, st.insertions - 10);
}

TEST_P(PolicyPropertyTest, PinUnpinBalanceAllowsEviction) {
  const auto c = makeCache(GetParam(), 2);
  c->access(k(1), 1.0);
  c->pin(k(1));
  c->pin(k(1));
  c->unpin(k(1));
  EXPECT_EQ(c->pinCount(k(1)), 1);
  c->unpin(k(1));
  EXPECT_EQ(c->pinCount(k(1)), 0);
  c->access(k(2), 1.0);
  c->access(k(3), 1.0);
  EXPECT_EQ(c->size(), 2);  // k1 evictable again
}

TEST_P(PolicyPropertyTest, CapacityOneDegeneratesGracefully) {
  const auto c = makeCache(GetParam(), 1);
  for (int i = 0; i < 100; ++i) {
    c->access(k(i % 7), 1.0);
    ASSERT_LE(c->size(), 1);
  }
  EXPECT_EQ(c->size(), 1);
}

TEST_P(PolicyPropertyTest, DeterministicReplay) {
  // Two identically-seeded caches fed the same sequence evolve
  // identically — required for bit-reproducible DES benches.
  const auto a = makeCache(GetParam(), 16, /*seed=*/5);
  const auto b = makeCache(GetParam(), 16, /*seed=*/5);
  Rng rng(44);
  for (int i = 0; i < 2000; ++i) {
    const auto key = k(static_cast<int>(rng.uniformInt(0, 63)));
    const double cost = static_cast<double>(rng.uniformInt(1, 16));
    const auto ra = a->access(key, cost);
    const auto rb = b->access(key, cost);
    ASSERT_EQ(ra.hit, rb.hit);
    ASSERT_EQ(ra.evicted, rb.evicted);
  }
  EXPECT_EQ(a->stats().evictions, b->stats().evictions);
}

TEST_P(PolicyPropertyTest, EvictedCostAccounting) {
  const auto c = makeCache(GetParam(), 4);
  for (int i = 0; i < 32; ++i) c->access(k(i), 2.0);
  // 28 evictions of cost-2 entries.
  EXPECT_DOUBLE_EQ(c->stats().evictedCostTotal,
                   2.0 * static_cast<double>(c->stats().evictions));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyPropertyTest,
                         ::testing::ValuesIn(kAllPolicies),
                         [](const auto& info) {
                           return simmodel::policyKindName(info.param);
                         });

}  // namespace
}  // namespace simfs::cache
