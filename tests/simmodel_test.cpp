// Unit tests for simfs::simmodel — step geometry (the paper's Fig. 3
// arithmetic), filename codec, performance model, contexts and drivers.
#include "simmodel/context.hpp"
#include "simmodel/driver.hpp"
#include "simmodel/filename_codec.hpp"
#include "simmodel/perf_model.hpp"
#include "simmodel/step_geometry.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace simfs::simmodel {
namespace {

// -------------------------------------------------------------- geometry

TEST(StepGeometryTest, PaperFig3Example) {
  // Fig. 3: delta_d = 4, delta_r = 8; d1 at t=4, r1 at t=8.
  const StepGeometry g(4, 8, 16);
  EXPECT_EQ(g.numOutputSteps(), 4);
  EXPECT_EQ(g.numRestartSteps(), 2);
  EXPECT_EQ(g.outputTimestep(1), 4);
  EXPECT_EQ(g.restartTimestep(1), 8);
  // d1 (t=4) restarts from r0; d2 (t=8) exactly on r1 -> restarts from r1.
  EXPECT_EQ(g.restartFor(1), 0);
  EXPECT_EQ(g.restartFor(2), 1);
  EXPECT_EQ(g.restartFor(3), 1);
}

TEST(StepGeometryTest, RestartForMatchesFloorFormula) {
  const StepGeometry g(5, 60, 0);  // COSMO: delta_d=5, delta_r=60
  for (StepIndex i = 0; i < 100; ++i) {
    EXPECT_EQ(g.restartFor(i), (i * 5) / 60);
  }
}

TEST(StepGeometryTest, NextRestartAfterIsCeilWithBoundaryRollover) {
  const StepGeometry g(1, 4, 0);
  EXPECT_EQ(g.nextRestartAfter(1), 1);
  EXPECT_EQ(g.nextRestartAfter(3), 1);
  EXPECT_EQ(g.nextRestartAfter(4), 2);  // exactly on r1: run to r2
  EXPECT_EQ(g.nextRestartAfter(0), 1);
}

TEST(StepGeometryTest, FirstStepAtOrAfterRestart) {
  const StepGeometry g(5, 60, 0);
  EXPECT_EQ(g.firstStepAtOrAfterRestart(0), 0);
  EXPECT_EQ(g.firstStepAtOrAfterRestart(1), 12);  // t=60 -> step 12
  const StepGeometry g2(7, 10, 0);
  EXPECT_EQ(g2.firstStepAtOrAfterRestart(1), 2);  // t=10 -> step 2 (t=14)
}

TEST(StepGeometryTest, MissCostIsDistancePlusOne) {
  const StepGeometry g(1, 4, 0);
  EXPECT_EQ(g.missCostSteps(0), 1);  // on restart r0
  EXPECT_EQ(g.missCostSteps(1), 2);
  EXPECT_EQ(g.missCostSteps(3), 4);
  EXPECT_EQ(g.missCostSteps(4), 1);  // on restart r1
  EXPECT_EQ(g.missCostSteps(7), 4);
}

TEST(StepGeometryTest, StepsPerRestartInterval) {
  EXPECT_EQ(StepGeometry(1, 4, 0).stepsPerRestartInterval(), 4);
  EXPECT_EQ(StepGeometry(5, 60, 0).stepsPerRestartInterval(), 12);
  EXPECT_EQ(StepGeometry(7, 10, 0).stepsPerRestartInterval(), 2);  // ceil
}

TEST(StepGeometryTest, RoundUpToRestartMultiple) {
  const StepGeometry g(1, 4, 0);
  EXPECT_EQ(g.roundUpToRestartMultiple(1), 4);
  EXPECT_EQ(g.roundUpToRestartMultiple(4), 4);
  EXPECT_EQ(g.roundUpToRestartMultiple(5), 8);
  EXPECT_EQ(g.roundUpToRestartMultiple(0), 4);   // at least one interval
  EXPECT_EQ(g.roundUpToRestartMultiple(-3), 4);
}

TEST(StepGeometryTest, ValidStepRespectsTimeline) {
  const StepGeometry g(5, 60, 100);
  EXPECT_TRUE(g.validStep(0));
  EXPECT_TRUE(g.validStep(20));   // t=100 == numTimesteps
  EXPECT_FALSE(g.validStep(21));
  EXPECT_FALSE(g.validStep(-1));
  const StepGeometry unbounded(5, 60, 0);
  EXPECT_TRUE(unbounded.validStep(1'000'000));
}

TEST(StepGeometryTest, RunUntilBoundsCoverRequestedStep) {
  // Property: for any step i, the demand re-simulation range
  // [firstStepAtOrAfterRestart(R(i)), lastStepOfRunUntil(nextRestart)]
  // contains i.
  for (const auto [dd, dr] : {std::pair<int, int>{1, 4},
                              {5, 60},
                              {7, 10},
                              {3, 9},
                              {4, 6}}) {
    const StepGeometry g(dd, dr, 0);
    for (StepIndex i = 0; i < 200; ++i) {
      const auto first = g.firstStepAtOrAfterRestart(g.restartFor(i));
      const auto last = g.lastStepOfRunUntil(g.nextRestartAfter(i));
      EXPECT_LE(first, i) << "dd=" << dd << " dr=" << dr << " i=" << i;
      EXPECT_GE(last, i) << "dd=" << dd << " dr=" << dr << " i=" << i;
    }
  }
}

// ----------------------------------------------------------------- codec

TEST(FilenameCodecTest, RoundTrip) {
  const FilenameCodec c;
  EXPECT_EQ(c.outputFile(42), "out_0000000042.snc");
  EXPECT_EQ(c.restartFile(3), "restart_0000000003.rst");
  EXPECT_EQ(c.outputKey("out_0000000042.snc").value(), 42);
  EXPECT_EQ(c.restartKey("restart_0000000003.rst").value(), 3);
}

TEST(FilenameCodecTest, KeyIsMonotone) {
  const FilenameCodec c;
  StepIndex prev = -1;
  for (StepIndex i = 0; i < 100; i += 7) {
    const auto k = c.outputKey(c.outputFile(i));
    ASSERT_TRUE(k.isOk());
    EXPECT_GT(*k, prev);
    prev = *k;
  }
}

TEST(FilenameCodecTest, RejectsForeignNames) {
  const FilenameCodec c;
  EXPECT_FALSE(c.outputKey("restart_0000000001.rst").isOk());
  EXPECT_FALSE(c.outputKey("out_abc.snc").isOk());
  EXPECT_FALSE(c.outputKey("out_.snc").isOk());
  EXPECT_FALSE(c.outputKey("").isOk());
  EXPECT_TRUE(c.isRestartFile("restart_0000000001.rst"));
  EXPECT_FALSE(c.isOutputFile("restart_0000000001.rst"));
}

TEST(FilenameCodecTest, CustomConvention) {
  const FilenameCodec c("cosmo-", ".nc", "ckpt-", ".bin", 4);
  EXPECT_EQ(c.outputFile(7), "cosmo-0007.nc");
  EXPECT_EQ(c.outputKey("cosmo-0007.nc").value(), 7);
  EXPECT_EQ(c.restartFile(2), "ckpt-0002.bin");
}

TEST(FilenameCodecTest, IndicesWiderThanPaddingRoundTrip) {
  const FilenameCodec c("o", ".x", "r", ".y", 2);
  // 5 digits exceed the pad width of 2; the name grows, key() still works.
  EXPECT_EQ(c.outputFile(12345), "o12345.x");
  EXPECT_EQ(c.outputKey("o12345.x").value(), 12345);
}

// ------------------------------------------------------------- perf model

TEST(PerfModelTest, SingleLevel) {
  const PerfModel m(100, 3 * vtime::kSecond, 13 * vtime::kSecond);
  EXPECT_EQ(m.maxLevel(), 0);
  EXPECT_EQ(m.at(0).nodes, 100);
  EXPECT_EQ(m.simTime(10, 0), 13 * vtime::kSecond + 30 * vtime::kSecond);
  EXPECT_FALSE(m.levelImproves(0));
}

TEST(PerfModelTest, LevelsClampOutOfRange) {
  const PerfModel m(4, vtime::kSecond, 0);
  EXPECT_EQ(m.at(-5).nodes, 4);
  EXPECT_EQ(m.at(99).nodes, 4);
}

TEST(PerfModelTest, StrongScalingLadder) {
  const auto m = PerfModel::strongScaling(10, 8 * vtime::kSecond,
                                          2 * vtime::kSecond, 3, 1.0);
  EXPECT_EQ(m.maxLevel(), 3);
  EXPECT_EQ(m.at(0).nodes, 10);
  EXPECT_EQ(m.at(1).nodes, 20);
  EXPECT_EQ(m.at(3).nodes, 80);
  // Perfect efficiency halves tau per level.
  EXPECT_EQ(m.at(1).tauSim, 4 * vtime::kSecond);
  EXPECT_EQ(m.at(2).tauSim, 2 * vtime::kSecond);
  EXPECT_TRUE(m.levelImproves(0));
  EXPECT_FALSE(m.levelImproves(3));
}

// ---------------------------------------------------------------- context

TEST(PolicyKindTest, ParseAndName) {
  EXPECT_EQ(parsePolicyKind("dcl").value(), PolicyKind::kDcl);
  EXPECT_EQ(parsePolicyKind("LRU").value(), PolicyKind::kLru);
  EXPECT_EQ(parsePolicyKind("Lirs").value(), PolicyKind::kLirs);
  EXPECT_FALSE(parsePolicyKind("nope").isOk());
  EXPECT_STREQ(policyKindName(PolicyKind::kArc), "ARC");
}

TEST(ContextConfigTest, CacheCapacitySteps) {
  ContextConfig cfg;
  cfg.outputStepBytes = 6 * bytes::GiB;
  cfg.cacheQuotaBytes = 25 * 6 * bytes::GiB;
  EXPECT_EQ(cfg.cacheCapacitySteps(), 25);
  cfg.cacheQuotaBytes = 0;
  EXPECT_EQ(cfg.cacheCapacitySteps(), 0);  // unlimited
}

TEST(ChecksumMapTest, RecordAndMatch) {
  ChecksumMap map;
  map.record("out_1.snc", 0xABCD);
  EXPECT_EQ(map.lookup("out_1.snc").value(), 0xABCDu);
  EXPECT_TRUE(map.matches("out_1.snc", 0xABCD).value());
  EXPECT_FALSE(map.matches("out_1.snc", 0x1234).value());
  EXPECT_FALSE(map.matches("unknown", 1).isOk());
}

TEST(ChecksumMapTest, SerializeRoundTrip) {
  ChecksumMap map;
  map.record("a.snc", 0x1);
  map.record("b.snc", 0xFFFFFFFFFFFFFFFFULL);
  const auto restored = ChecksumMap::deserialize(map.serialize());
  ASSERT_TRUE(restored.isOk());
  EXPECT_EQ(restored->lookup("a.snc").value(), 0x1u);
  EXPECT_EQ(restored->lookup("b.snc").value(), 0xFFFFFFFFFFFFFFFFULL);
}

TEST(ChecksumMapTest, RejectsGarbage) {
  EXPECT_FALSE(ChecksumMap::deserialize("no-tab-here\n").isOk());
  EXPECT_FALSE(ChecksumMap::deserialize("name\tnothex\n").isOk());
}

// ----------------------------------------------------------------- driver

TEST(DriverTest, SyntheticDriverJobScript) {
  ContextConfig cfg;
  cfg.name = "test";
  cfg.geometry = StepGeometry(1, 4, 0);
  cfg.perf = PerfModel(16, vtime::kSecond, 0);
  const SyntheticDriver driver(cfg);
  const auto job = driver.makeJob(3, 11, 0);
  EXPECT_EQ(job.context, "test");
  EXPECT_EQ(job.startStep, 3);
  EXPECT_EQ(job.stopStep, 11);
  EXPECT_NE(job.script.find("--start 3"), std::string::npos);
  EXPECT_NE(job.script.find("--nodes 16"), std::string::npos);
}

TEST(DriverTest, KeyUsesCodec) {
  ContextConfig cfg;
  const SyntheticDriver driver(cfg);
  EXPECT_EQ(driver.key("out_0000000009.snc").value(), 9);
  EXPECT_FALSE(driver.key("bogus").isOk());
}

TEST(DriverTest, ParseDriverFile) {
  const auto driver = parseDriver(
      "[context]\n"
      "name = flash-sedov\n"
      "delta_d = 1\n"
      "delta_r = 20\n"
      "output_bytes = 1048576\n"
      "policy = DCL\n"
      "s_max = 16\n"
      "[perf]\n"
      "nodes = 54\n"
      "tau_sim_ms = 14000\n"
      "alpha_sim_ms = 7000\n"
      "[naming]\n"
      "output_prefix = sedov_\n"
      "output_suffix = .h5\n"
      "pad_width = 6\n"
      "[job]\n"
      "script_template = srun -N {nodes} sedov {start} {stop}\n");
  ASSERT_TRUE(driver.isOk());
  const auto& cfg = (*driver)->config();
  EXPECT_EQ(cfg.name, "flash-sedov");
  EXPECT_EQ(cfg.geometry.deltaR(), 20);
  EXPECT_EQ(cfg.sMax, 16);
  EXPECT_EQ(cfg.perf.at(0).nodes, 54);
  EXPECT_EQ(cfg.perf.at(0).tauSim, 14 * vtime::kSecond);
  EXPECT_EQ(cfg.codec.outputFile(3), "sedov_000003.h5");
  const auto job = (*driver)->makeJob(0, 19, 0);
  EXPECT_EQ(job.script, "srun -N 54 sedov 0 19");
}

TEST(DriverTest, ParseDriverRejectsBadConfig) {
  EXPECT_FALSE(parseDriver("[context]\ndelta_d = 0\n").isOk());
  EXPECT_FALSE(parseDriver("[context]\npolicy = WRONG\n").isOk());
  EXPECT_FALSE(parseDriver("[context]\ns_max = 0\n").isOk());
  EXPECT_FALSE(parseDriver("[context]\nema_smoothing = 2.0\n").isOk());
}

TEST(DriverTest, LoadDriverFileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("simfs_driver_" + std::to_string(::getpid()) + ".drv");
  {
    std::ofstream out(path);
    out << "[context]\nname = filetest\ndelta_d = 2\ndelta_r = 10\n"
        << "[perf]\nnodes = 8\ntau_sim_ms = 250\n";
  }
  auto driver = loadDriverFile(path.string());
  ASSERT_TRUE(driver.isOk());
  EXPECT_EQ((*driver)->config().name, "filetest");
  EXPECT_EQ((*driver)->config().geometry.deltaD(), 2);
  EXPECT_EQ((*driver)->config().perf.at(0).nodes, 8);
  std::filesystem::remove(path);
  EXPECT_FALSE(loadDriverFile(path.string()).isOk());  // gone now
}

TEST(DriverTest, StrongScalingPerfFromFile) {
  const auto driver = parseDriver(
      "[context]\nname = ladder\n"
      "[perf]\nnodes = 4\ntau_sim_ms = 1000\nmax_level = 2\n"
      "efficiency = 1.0\n");
  ASSERT_TRUE(driver.isOk());
  const auto& perf = (*driver)->config().perf;
  EXPECT_EQ(perf.maxLevel(), 2);
  EXPECT_EQ(perf.at(0).nodes, 4);
  EXPECT_EQ(perf.at(2).nodes, 16);
  EXPECT_EQ(perf.at(1).tauSim, 500 * vtime::kMillisecond);
}

}  // namespace
}  // namespace simfs::simmodel
