// Tests for the online cache-size autotuner (the paper's Sec. V-B future
// work) and the trace profiler.
#include "dv/autotuner.hpp"
#include "trace/trace_stats.hpp"

#include <gtest/gtest.h>

namespace simfs {
namespace {

dv::CacheAutotuner::Config tunerConfig() {
  dv::CacheAutotuner::Config cfg;
  cfg.scenario = cost::cosmoScenario();
  cfg.rates = cost::azureRates();
  cfg.minCacheSteps = 100;
  cfg.maxCacheSteps = cfg.scenario.numOutputSteps;
  return cfg;
}

TEST(AutotunerTest, KeepsWhenWindowIsBalanced) {
  dv::CacheAutotuner tuner(tunerConfig(), 2133);  // 25%
  dv::TuneWindow window;
  window.accesses = 10000;
  window.misses = 500;
  // Modest re-simulation load: the storage already roughly pays for itself.
  window.resimulatedSteps = 3000;
  const auto d = tuner.observe(window);
  // Whatever the action, the recommendation stays within bounds and the
  // saving is non-negative.
  EXPECT_GE(d.recommendedCacheSteps, 100);
  EXPECT_LE(d.recommendedCacheSteps, cost::cosmoScenario().numOutputSteps);
  EXPECT_GE(d.estimatedMonthlySaving, 0.0);
}

TEST(AutotunerTest, GrowsUnderHeavyResimulation) {
  dv::CacheAutotuner tuner(tunerConfig(), 500);
  dv::TuneWindow window;
  window.accesses = 100000;
  window.misses = 60000;
  window.resimulatedSteps = 400000;  // compute bill dwarfs storage
  const auto d = tuner.observe(window);
  EXPECT_EQ(d.action, dv::TuneDecision::Action::kGrow);
  EXPECT_GT(d.recommendedCacheSteps, 500);
  EXPECT_GT(d.estimatedMonthlySaving, 0.0);
}

TEST(AutotunerTest, ShrinksWhenCacheIsIdle) {
  dv::CacheAutotuner tuner(tunerConfig(), 6000);  // ~70% cached
  dv::TuneWindow window;
  window.accesses = 10000;
  window.misses = 10;
  window.resimulatedSteps = 50;  // almost no re-simulation anyway
  const auto d = tuner.observe(window);
  EXPECT_EQ(d.action, dv::TuneDecision::Action::kShrink);
  EXPECT_LT(d.recommendedCacheSteps, 6000);
}

TEST(AutotunerTest, ApplyMovesTheConfiguration) {
  dv::CacheAutotuner tuner(tunerConfig(), 500);
  dv::TuneWindow window;
  window.accesses = 100000;
  window.misses = 60000;
  window.resimulatedSteps = 400000;
  const auto d = tuner.observe(window);
  ASSERT_EQ(d.action, dv::TuneDecision::Action::kGrow);
  tuner.apply(d);
  EXPECT_EQ(tuner.cacheSteps(), d.recommendedCacheSteps);
  EXPECT_GT(tuner.monthlyCostEstimate(), 0.0);
}

TEST(AutotunerTest, ConvergesInsteadOfOscillating) {
  // Feed the same heavy window repeatedly, applying every recommendation:
  // the tuner must settle (bounded growth), not ping-pong forever.
  dv::CacheAutotuner tuner(tunerConfig(), 500);
  dv::TuneWindow window;
  window.accesses = 100000;
  window.misses = 60000;
  window.resimulatedSteps = 300000;
  std::int64_t prev = -1;
  int flips = 0;
  dv::TuneDecision::Action lastAction = dv::TuneDecision::Action::kKeep;
  for (int i = 0; i < 50; ++i) {
    const auto d = tuner.observe(window);
    if (d.action == dv::TuneDecision::Action::kKeep) break;
    if (lastAction != dv::TuneDecision::Action::kKeep &&
        d.action != lastAction) {
      ++flips;
    }
    lastAction = d.action;
    tuner.apply(d);
    // Growth shrinks the observed window proportionally (the bigger cache
    // intercepts re-simulations) — emulate the feedback loop.
    window.resimulatedSteps =
        static_cast<std::uint64_t>(window.resimulatedSteps * 0.8);
    EXPECT_NE(tuner.cacheSteps(), prev);
    prev = tuner.cacheSteps();
  }
  EXPECT_LE(flips, 1);
}

TEST(AutotunerTest, RespectsBounds) {
  auto cfg = tunerConfig();
  cfg.minCacheSteps = 400;
  cfg.maxCacheSteps = 800;
  dv::CacheAutotuner tuner(cfg, 100);  // clamped up to min
  EXPECT_EQ(tuner.cacheSteps(), 400);
  dv::TuneWindow heavy;
  heavy.accesses = 1000;
  heavy.misses = 900;
  heavy.resimulatedSteps = 1000000;
  for (int i = 0; i < 20; ++i) tuner.apply(tuner.observe(heavy));
  EXPECT_LE(tuner.cacheSteps(), 800);
}

// --------------------------------------------------------- trace profiling

TEST(TraceProfileTest, ForwardScanProfile) {
  const auto t = trace::makeForwardTrace(0, 100, 1000);
  const auto p = trace::profileTrace(t);
  EXPECT_EQ(p.accesses, 100u);
  EXPECT_EQ(p.distinctSteps, 100u);
  EXPECT_DOUBLE_EQ(p.sequentialFraction, 1.0);
  EXPECT_DOUBLE_EQ(p.forwardFraction, 1.0);
  EXPECT_DOUBLE_EQ(p.reuseFraction, 0.0);
  EXPECT_DOUBLE_EQ(p.medianReuseDistance, -1.0);
}

TEST(TraceProfileTest, BackwardScanProfile) {
  const auto t = trace::makeBackwardTrace(99, 100, 1000);
  const auto p = trace::profileTrace(t);
  EXPECT_DOUBLE_EQ(p.sequentialFraction, 1.0);
  EXPECT_DOUBLE_EQ(p.forwardFraction, 0.0);
}

TEST(TraceProfileTest, RepeatedAccessReuse) {
  const trace::Trace t{1, 2, 3, 1, 2, 3};
  const auto p = trace::profileTrace(t);
  EXPECT_EQ(p.distinctSteps, 3u);
  EXPECT_DOUBLE_EQ(p.reuseFraction, 0.5);
  // Between the two accesses of step 1 lie steps {2, 3}: distance 2.
  EXPECT_DOUBLE_EQ(p.medianReuseDistance, 2.0);
}

TEST(TraceProfileTest, EcmwfLikeIsSkewedAndReusing) {
  Rng rng(5);
  trace::EcmwfParams params;
  params.distinctFiles = 200;
  params.totalAccesses = 20000;
  const auto t = trace::makeEcmwfLikeTrace(rng, params, 1152);
  const auto p = trace::profileTrace(t);
  EXPECT_GT(p.top10Share, 0.3);       // archival popularity skew
  EXPECT_GT(p.reuseFraction, 0.9);    // almost everything is a re-reference
  EXPECT_LT(p.sequentialFraction, 0.2);
}

TEST(TraceProfileTest, EmptyTrace) {
  const auto p = trace::profileTrace({});
  EXPECT_EQ(p.accesses, 0u);
  EXPECT_EQ(p.distinctSteps, 0u);
}

TEST(ReuseHistogramTest, BucketsAndColdCounts) {
  const trace::Trace t{1, 2, 3, 1, 2, 3};
  const auto hist = trace::reuseDistanceHistogram(t, 8);
  ASSERT_EQ(hist.size(), 9u);
  EXPECT_EQ(hist.back(), 3u);  // three first-touch accesses
  std::uint64_t reuses = 0;
  for (std::size_t i = 0; i + 1 < hist.size(); ++i) reuses += hist[i];
  EXPECT_EQ(reuses, 3u);
}

TEST(ReuseHistogramTest, ScanIsAllCold) {
  const auto t = trace::makeForwardTrace(0, 64, 1000);
  const auto hist = trace::reuseDistanceHistogram(t);
  EXPECT_EQ(hist.back(), 64u);
}

}  // namespace
}  // namespace simfs
