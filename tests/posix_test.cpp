// POSIX frontend tests: path classification, geometry wire hardening,
// the TTL cache, the PosixVfs batch/attach/cancel lifecycle over a live
// daemon, and the preload shim's fd table.
#include "dv/daemon.hpp"
#include "dvlib/iolib.hpp"
#include "dvlib/simfs_client.hpp"
#include "msg/message.hpp"
#include "msg/transport.hpp"
#include "posix/geometry.hpp"
#include "posix/path.hpp"
#include "posix/shim.hpp"
#include "posix/vfs_core.hpp"
#include "simulator/threaded_fleet.hpp"
#include "vfs/file_store.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace simfs::posix {
namespace {

using simmodel::ContextConfig;
using simmodel::PerfModel;
using simmodel::StepGeometry;

// ------------------------------------------------------------------- path

TEST(PosixPathTest, ClassifiesTheThreeLevels) {
  EXPECT_EQ(parsePosixPath("").kind, PathKind::kRoot);
  EXPECT_EQ(parsePosixPath("/").kind, PathKind::kRoot);
  EXPECT_EQ(parsePosixPath("///").kind, PathKind::kRoot);

  const auto ctx = parsePosixPath("/cosmo");
  EXPECT_EQ(ctx.kind, PathKind::kContext);
  EXPECT_EQ(ctx.context, "cosmo");
  EXPECT_EQ(parsePosixPath("cosmo/").kind, PathKind::kContext);

  const auto file = parsePosixPath("/cosmo/out_0000000003.snc");
  EXPECT_EQ(file.kind, PathKind::kFile);
  EXPECT_EQ(file.context, "cosmo");
  EXPECT_EQ(file.file, "out_0000000003.snc");
  EXPECT_EQ(parsePosixPath("//cosmo///out_0000000003.snc").kind,
            PathKind::kFile);
}

TEST(PosixPathTest, RejectsWhatTheNamespaceCannotContain) {
  // Dotfiles and traversal: shells probe these constantly; they must
  // fail before any RPC.
  EXPECT_EQ(parsePosixPath("/.git").kind, PathKind::kInvalid);
  EXPECT_EQ(parsePosixPath("/cosmo/.hidden").kind, PathKind::kInvalid);
  EXPECT_EQ(parsePosixPath("/..").kind, PathKind::kInvalid);
  EXPECT_EQ(parsePosixPath("/cosmo/..").kind, PathKind::kInvalid);
  EXPECT_EQ(parsePosixPath(".").kind, PathKind::kInvalid);
  // Too deep.
  EXPECT_EQ(parsePosixPath("/a/b/c").kind, PathKind::kInvalid);
  // Trailing slash on a file.
  EXPECT_EQ(parsePosixPath("/cosmo/out_0000000003.snc/").kind,
            PathKind::kInvalid);
}

TEST(PosixPathTest, ValidComponent) {
  EXPECT_TRUE(validComponent("cosmo"));
  EXPECT_TRUE(validComponent("out_0000000003.snc"));
  EXPECT_FALSE(validComponent(""));
  EXPECT_FALSE(validComponent(".hidden"));
  EXPECT_FALSE(validComponent(".."));
  EXPECT_FALSE(validComponent("a/b"));
}

TEST(PosixPathTest, ClassifierIsOnePrefixCheck) {
  const PathClassifier c("/simfs/");
  std::string_view rest;
  EXPECT_TRUE(c.match("/simfs", &rest));
  EXPECT_EQ(rest, "");
  EXPECT_TRUE(c.match("/simfs/ctx0/x", &rest));
  EXPECT_EQ(rest, "/ctx0/x");
  EXPECT_FALSE(c.match("/simfsy/ctx0"));
  EXPECT_FALSE(c.match("/simf"));
  EXPECT_FALSE(c.match(nullptr));
  EXPECT_FALSE(PathClassifier("").match("/anything"));
}

// --------------------------------------------------------- geometry wire

msg::Message goodAck() {
  msg::Message m;
  m.type = msg::MsgType::kGeometryAck;
  m.requestId = 1;
  m.context = "cosmo";
  m.ints = {1, 4, 128, 64, 10};
  m.files = {"out_", ".snc"};
  m.intArg = 128;
  m.code = static_cast<std::int32_t>(StatusCode::kOk);
  m.text = "dv0";
  return m;
}

TEST(GeometryWireTest, ParsesTheContextForm) {
  const auto g = parseGeometryAck(goodAck());
  ASSERT_TRUE(g.isOk()) << g.status().toString();
  EXPECT_EQ(g->context, "cosmo");
  EXPECT_EQ(g->numOutputSteps, 128);
  EXPECT_EQ(g->outputStepBytes, 64u);
  EXPECT_EQ(g->fileAt(3), "out_0000000003.snc");
  StepIndex step = -1;
  EXPECT_TRUE(g->stepOf("out_0000000042.snc", &step));
  EXPECT_EQ(step, 42);
  EXPECT_FALSE(g->stepOf("restart_0000000001.rst", &step));
}

TEST(GeometryWireTest, RejectsHostileAcks) {
  {
    auto m = goodAck();
    m.type = msg::MsgType::kStatusAck;  // wrong type
    EXPECT_FALSE(parseGeometryAck(m).isOk());
  }
  {
    auto m = goodAck();
    m.code = static_cast<std::int32_t>(StatusCode::kNotFound);
    EXPECT_FALSE(parseGeometryAck(m).isOk());
  }
  {
    auto m = goodAck();
    m.ints.pop_back();  // truncated scalar list
    EXPECT_FALSE(parseGeometryAck(m).isOk());
  }
  {
    auto m = goodAck();
    m.ints.push_back(7);  // trailing garbage scalar
    EXPECT_FALSE(parseGeometryAck(m).isOk());
  }
  {
    auto m = goodAck();
    m.files = {"out_"};  // missing suffix
    EXPECT_FALSE(parseGeometryAck(m).isOk());
  }
  {
    auto m = goodAck();
    m.ints[0] = 0;  // deltaD < 1
    EXPECT_FALSE(parseGeometryAck(m).isOk());
  }
  {
    auto m = goodAck();
    m.ints[4] = 25;  // absurd pad width
    EXPECT_FALSE(parseGeometryAck(m).isOk());
  }
  {
    auto m = goodAck();
    m.files[0] = "evil/";  // path separator in an affix
    EXPECT_FALSE(parseGeometryAck(m).isOk());
  }
  {
    auto m = goodAck();
    m.intArg = 999;  // forged step count disagreeing with the geometry
    EXPECT_FALSE(parseGeometryAck(m).isOk());
  }
  {
    auto m = goodAck();
    m.intArg = -1;
    EXPECT_FALSE(parseGeometryAck(m).isOk());
  }
}

TEST(GeometryWireTest, RejectsHostileEnumerations) {
  msg::Message m;
  m.type = msg::MsgType::kGeometryAck;
  m.files = {"ctx0", "ctx1"};
  m.intArg = 2;
  m.code = static_cast<std::int32_t>(StatusCode::kOk);
  ASSERT_TRUE(parseContextListAck(m).isOk());

  auto forged = m;
  forged.intArg = 3;  // count disagrees with the list
  EXPECT_FALSE(parseContextListAck(forged).isOk());

  auto dotted = m;
  dotted.files[1] = ".hidden";  // not a namespace component
  EXPECT_FALSE(parseContextListAck(dotted).isOk());
}

TEST(GeometryClientTest, TtlCachesAndInvalidates) {
  GeometryClient::Options opts;
  opts.ttl = std::chrono::milliseconds(60000);
  GeometryClient client(
      [](const msg::Message& req) -> Result<msg::Message> {
        auto ack = goodAck();
        ack.requestId = req.requestId;
        ack.context = req.context;
        return ack;
      },
      opts);
  ASSERT_TRUE(client.context("cosmo").isOk());
  ASSERT_TRUE(client.context("cosmo").isOk());
  EXPECT_EQ(client.fetches(), 1u);  // second lookup came from cache
  client.invalidate();
  ASSERT_TRUE(client.context("cosmo").isOk());
  EXPECT_EQ(client.fetches(), 2u);
}

TEST(GeometryClientTest, ZeroTtlRefetchesEveryLookup) {
  GeometryClient::Options opts;
  opts.ttl = std::chrono::milliseconds(0);
  GeometryClient client(
      [](const msg::Message& req) -> Result<msg::Message> {
        auto ack = goodAck();
        ack.requestId = req.requestId;
        ack.context = req.context;
        return ack;
      },
      opts);
  ASSERT_TRUE(client.context("cosmo").isOk());
  ASSERT_TRUE(client.context("cosmo").isOk());
  EXPECT_EQ(client.fetches(), 2u);
}

// ------------------------------------------------------------- live vfs

/// Pass-through transport wrapper counting outbound messages by type —
/// pins the one-kOpenBatchReq contract of the listing prefetch.
class CountingTransport final : public msg::Transport {
 public:
  struct Counters {
    std::mutex mu;
    std::map<msg::MsgType, int> sent;
    int of(msg::MsgType t) {
      std::lock_guard lock(mu);
      const auto it = sent.find(t);
      return it == sent.end() ? 0 : it->second;
    }
  };

  CountingTransport(std::unique_ptr<msg::Transport> inner,
                    std::shared_ptr<Counters> counters)
      : inner_(std::move(inner)), counters_(std::move(counters)) {}

  Status send(const msg::Message& m) override {
    {
      std::lock_guard lock(counters_->mu);
      ++counters_->sent[m.type];
    }
    return inner_->send(m);
  }
  void setHandler(Handler handler) override {
    inner_->setHandler(std::move(handler));
  }
  void setCloseHandler(std::function<void()> handler) override {
    inner_->setCloseHandler(std::move(handler));
  }
  void close() override { inner_->close(); }
  [[nodiscard]] bool isOpen() const override { return inner_->isOpen(); }

 private:
  std::unique_ptr<msg::Transport> inner_;
  std::shared_ptr<Counters> counters_;
};

/// One kGeometryReq round trip over a fresh in-proc transport — the same
/// dispatch path a socket client exercises.
Result<msg::Message> inprocGeometryCall(dv::Daemon& daemon,
                                        const msg::Message& req) {
  auto transport = daemon.connectInProc();
  std::mutex mu;
  std::condition_variable cv;
  std::vector<msg::Message> got;
  transport->setHandler([&](msg::Message&& m) {
    std::lock_guard lock(mu);
    got.push_back(std::move(m));
    cv.notify_all();
  });
  if (const auto st = transport->send(req); !st.isOk()) return st;
  std::unique_lock lock(mu);
  if (!cv.wait_for(lock, std::chrono::seconds(5),
                   [&] { return !got.empty(); })) {
    return errTimedOut("no geometry reply");
  }
  return std::move(got.front());
}

class PosixVfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.name = "posix";
    cfg_.geometry = StepGeometry(1, 4, 64);
    cfg_.outputStepBytes = 64;
    cfg_.cacheQuotaBytes = 0;
    cfg_.sMax = 8;
    cfg_.prefetchEnabled = false;
    cfg_.perf = PerfModel(2, 1 * vtime::kMillisecond,
                          2 * vtime::kMillisecond);
    daemon_ = std::make_unique<dv::Daemon>();
    fleet_ = std::make_unique<simulator::ThreadedSimulatorFleet>(
        *daemon_, store_, /*timeScale=*/0.001);
    ASSERT_TRUE(daemon_
                    ->registerContext(
                        std::make_unique<simmodel::SyntheticDriver>(cfg_))
                    .isOk());
    fleet_->registerContext(cfg_);
    daemon_->setLauncher(fleet_.get());
    counters_ = std::make_shared<CountingTransport::Counters>();
  }

  void TearDown() override {
    vfs_.reset();  // cancels handles + finalizes sessions first
    dvlib::IoDispatch::instance().reset();
    fleet_.reset();
    daemon_.reset();
  }

  void makeVfs(std::size_t batchMax = 64) {
    PosixVfs::Options opts;
    opts.geometryCall = [this](const msg::Message& req) {
      return inprocGeometryCall(*daemon_, req);
    };
    opts.connect = [this](const std::string&)
        -> Result<std::unique_ptr<msg::Transport>> {
      std::unique_ptr<msg::Transport> t = std::make_unique<CountingTransport>(
          daemon_->connectInProc(), counters_);
      return t;
    };
    opts.readdirBatchMax = batchMax;
    vfs_ = std::make_unique<PosixVfs>(std::move(opts));
  }

  ContextConfig cfg_;
  vfs::MemFileStore store_;
  std::unique_ptr<dv::Daemon> daemon_;
  std::unique_ptr<simulator::ThreadedSimulatorFleet> fleet_;
  std::shared_ptr<CountingTransport::Counters> counters_;
  std::unique_ptr<PosixVfs> vfs_;
};

TEST_F(PosixVfsTest, SynthesizesAttrsAndListings) {
  makeVfs();
  const auto roots = vfs_->listContexts();
  ASSERT_TRUE(roots.isOk());
  ASSERT_EQ(roots->size(), 1u);
  EXPECT_EQ((*roots)[0], "posix");

  auto attr = vfs_->getattr(parsePosixPath("/posix"));
  ASSERT_TRUE(attr.isOk());
  EXPECT_TRUE(attr->dir);
  EXPECT_EQ(attr->entries, 64);

  attr = vfs_->getattr(parsePosixPath("/posix/" + cfg_.codec.outputFile(7)));
  ASSERT_TRUE(attr.isOk());
  EXPECT_FALSE(attr->dir);
  EXPECT_EQ(attr->size, 64u);

  EXPECT_FALSE(vfs_->getattr(parsePosixPath("/nope")).isOk());
  // Step 64 parses but is off the timeline.
  EXPECT_FALSE(
      vfs_->getattr(parsePosixPath("/posix/" + cfg_.codec.outputFile(64)))
          .isOk());

  // Pagination: ascending step order, `more` set exactly until the end.
  const auto p0 = vfs_->readdir("posix", 0, 10);
  ASSERT_TRUE(p0.isOk());
  ASSERT_EQ(p0->names.size(), 10u);
  EXPECT_TRUE(p0->more);
  EXPECT_EQ(p0->names[0], cfg_.codec.outputFile(0));
  EXPECT_EQ(p0->names[9], cfg_.codec.outputFile(9));
  const auto p1 = vfs_->readdir("posix", 60, 10);
  ASSERT_TRUE(p1.isOk());
  ASSERT_EQ(p1->names.size(), 4u);
  EXPECT_FALSE(p1->more);
  const auto past = vfs_->readdir("posix", 64, 10);
  ASSERT_TRUE(past.isOk());
  EXPECT_TRUE(past->names.empty());
  EXPECT_FALSE(vfs_->readdir("posix", -1, 10).isOk());

  // One enumerate + one context fetch + one (failed, uncached) fetch for
  // the unknown context — every warm lookup above was a cache hit.
  EXPECT_EQ(vfs_->geometry().fetches(), 3u);
}

TEST_F(PosixVfsTest, ListingPlusEveryReadIsOneBatchRequest) {
  makeVfs();
  // `ls`: page the whole listing.
  std::vector<std::string> names;
  std::int64_t off = 0;
  for (;;) {
    const auto page = vfs_->readdir("posix", off, 16);
    ASSERT_TRUE(page.isOk());
    off += static_cast<std::int64_t>(page->names.size());
    names.insert(names.end(), page->names.begin(), page->names.end());
    if (!page->more) break;
  }
  ASSERT_EQ(names.size(), 64u);

  // Read everything: each open attaches to the listing's prefetch batch,
  // each waitReady blocks until the (cold) step was re-simulated.
  std::vector<std::int64_t> ids;
  for (const auto& name : names) {
    const auto opened = vfs_->open("posix", name);
    ASSERT_TRUE(opened.isOk()) << name << ": " << opened.status().toString();
    ids.push_back(opened->id);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(vfs_->waitReady(ids[i]).isOk()) << names[i];
    const auto bytes = store_.read(names[i]);
    ASSERT_TRUE(bytes.isOk()) << names[i];
    EXPECT_FALSE(bytes->empty()) << names[i];
  }
  for (const auto id : ids) vfs_->close(id);

  // THE tentpole pin: 64 filenames listed and read cost ONE vectored
  // open request on the wire.
  EXPECT_EQ(counters_->of(msg::MsgType::kOpenBatchReq), 1);
  EXPECT_EQ(counters_->of(msg::MsgType::kOpenReq), 0);
  EXPECT_EQ(counters_->of(msg::MsgType::kAcquireReq), 0);
}

TEST_F(PosixVfsTest, ColdOpenMatchesFacadeBytes) {
  makeVfs();
  const std::string name = cfg_.codec.outputFile(42);

  // POSIX path: open without a covering listing -> batch of one; the
  // ready-wait rides out the re-simulation.
  const auto opened = vfs_->open("posix", name);
  ASSERT_TRUE(opened.isOk());
  EXPECT_EQ(opened->size, 64u);
  EXPECT_EQ(opened->storeName, name);
  ASSERT_TRUE(vfs_->waitReady(opened->id).isOk());
  const auto posixBytes = store_.read(name);
  ASSERT_TRUE(posixBytes.isOk());
  vfs_->close(opened->id);

  // Facade oracle: the intercepted-I/O path must deliver the same bytes.
  auto client = dvlib::SimFSClient::connect(daemon_->connectInProc(), "posix");
  ASSERT_TRUE(client.isOk());
  auto& io = dvlib::IoDispatch::instance();
  io.installAnalysis(client->get(), &store_);
  const auto handle = io.openForRead(name);
  ASSERT_TRUE(handle.isOk());
  const auto oracle = io.readAll(*handle);
  ASSERT_TRUE(oracle.isOk());
  ASSERT_TRUE(io.close(*handle).isOk());
  io.reset();

  EXPECT_EQ(*posixBytes, *oracle);
}

TEST_F(PosixVfsTest, OpenRejectsWhatIsNotInTheNamespace) {
  makeVfs();
  EXPECT_FALSE(vfs_->open("posix", "garbage.txt").isOk());
  EXPECT_FALSE(vfs_->open("posix", cfg_.codec.outputFile(64)).isOk());
  EXPECT_FALSE(vfs_->open("nope", cfg_.codec.outputFile(0)).isOk());
  EXPECT_FALSE(vfs_->waitReady(999).isOk());  // unknown handle
}

TEST_F(PosixVfsTest, CloseOfUnreadOpenCancelsCleanly) {
  makeVfs();
  const std::string name = cfg_.codec.outputFile(3);
  const auto opened = vfs_->open("posix", name);
  ASSERT_TRUE(opened.isOk());
  vfs_->close(opened->id);  // never waited: must cancel, not leak

  // The registration is gone; a fresh open + wait still works.
  const auto again = vfs_->open("posix", name);
  ASSERT_TRUE(again.isOk());
  ASSERT_TRUE(vfs_->waitReady(again->id).isOk());
  vfs_->close(again->id);
}

TEST_F(PosixVfsTest, HostileGeometryFailsCleanly) {
  PosixVfs::Options opts;
  opts.geometryCall = [](const msg::Message&) -> Result<msg::Message> {
    auto ack = goodAck();
    ack.ints.pop_back();  // truncated scalar list
    return ack;
  };
  opts.connect = [this](const std::string&)
      -> Result<std::unique_ptr<msg::Transport>> {
    return daemon_->connectInProc();
  };
  vfs_ = std::make_unique<PosixVfs>(std::move(opts));
  EXPECT_FALSE(vfs_->getattr(parsePosixPath("/posix")).isOk());
  EXPECT_FALSE(vfs_->readdir("posix", 0, 10).isOk());
  EXPECT_FALSE(vfs_->open("posix", "out_0000000001.snc").isOk());
}

// -------------------------------------------------------------- fd table

TEST(FdTableTest, LookupIsBoundsCheckedAndReuseRecycles) {
  FdTable table;
  EXPECT_EQ(table.get(-1), nullptr);
  EXPECT_EQ(table.get(FdTable::kCapacity), nullptr);
  EXPECT_EQ(table.take(1 << 20), nullptr);

  FdEntry* a = table.acquireEntry();
  a->vfsOpenId = 7;
  a->size = 64;
  table.install(5, a);
  EXPECT_EQ(table.get(5), a);
  EXPECT_EQ(table.get(6), nullptr);

  FdEntry* taken = table.take(5);
  EXPECT_EQ(taken, a);
  EXPECT_EQ(table.get(5), nullptr);   // detached
  EXPECT_EQ(table.take(5), nullptr);  // idempotent
  table.recycle(taken);

  // Steady-state churn reuses the pooled entry, fully reset.
  FdEntry* b = table.acquireEntry();
  EXPECT_EQ(b, a);
  EXPECT_EQ(b->vfsOpenId, 0);
  EXPECT_EQ(b->size, 0u);
  EXPECT_FALSE(b->isDir);
  EXPECT_EQ(b->state.load(), FdEntry::kPending);
  table.install(5, b);
  table.recycle(table.take(5));
}

}  // namespace
}  // namespace simfs::posix
