// Live-stack tests: SimFSClient / C API / I/O facades against a real
// Daemon with a ThreadedSimulatorFleet (wall-clock, heavily time-scaled).
#include "common/checksum.hpp"
#include "dv/daemon.hpp"
#include "dvlib/iolib.hpp"
#include "dvlib/simfs_capi.hpp"
#include "dvlib/simfs_client.hpp"
#include "simulator/threaded_fleet.hpp"
#include "vfs/file_store.hpp"

#include <gtest/gtest.h>

namespace simfs::dvlib {
namespace {

using simmodel::ContextConfig;
using simmodel::PerfModel;
using simmodel::StepGeometry;

ContextConfig liveConfig() {
  ContextConfig cfg;
  cfg.name = "live";
  cfg.geometry = StepGeometry(1, 4, 128);
  cfg.outputStepBytes = 64;
  cfg.cacheQuotaBytes = 0;  // no eviction surprises in these tests
  cfg.sMax = 4;
  // Model times: alpha = 50 ms, tau = 20 ms; the fleet runs them 1:1
  // (they are already tiny).
  cfg.perf = PerfModel(4, 20 * vtime::kMillisecond, 50 * vtime::kMillisecond);
  return cfg;
}

class LiveStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = liveConfig();
    daemon_ = std::make_unique<dv::Daemon>();
    fleet_ = std::make_unique<simulator::ThreadedSimulatorFleet>(
        *daemon_, store_, /*timeScale=*/1.0);
    ASSERT_TRUE(daemon_
                    ->registerContext(
                        std::make_unique<simmodel::SyntheticDriver>(cfg_))
                    .isOk());
    fleet_->registerContext(cfg_);
    daemon_->setLauncher(fleet_.get());
    daemon_->setEvictFn([this](const std::string&, const std::string& f) {
      (void)store_.remove(f);
    });
  }

  void TearDown() override {
    client_.reset();
    IoDispatch::instance().reset();
    fleet_.reset();  // kill + join before the daemon goes away
    daemon_.reset();
  }

  void connectClient() {
    auto c = SimFSClient::connect(daemon_->connectInProc(), cfg_.name);
    ASSERT_TRUE(c.isOk()) << c.status().toString();
    client_ = std::move(*c);
  }

  ContextConfig cfg_;
  vfs::MemFileStore store_;
  std::unique_ptr<dv::Daemon> daemon_;
  std::unique_ptr<simulator::ThreadedSimulatorFleet> fleet_;
  std::unique_ptr<SimFSClient> client_;
};

TEST_F(LiveStackTest, ConnectAndFinalize) {
  connectClient();
  EXPECT_GT(client_->clientId(), 0u);
  EXPECT_EQ(client_->context(), "live");
  client_->finalize();
}

TEST_F(LiveStackTest, ConnectUnknownContextFails) {
  auto c = SimFSClient::connect(daemon_->connectInProc(), "nope");
  EXPECT_FALSE(c.isOk());
  EXPECT_EQ(c.status().code(), StatusCode::kNotFound);
}

TEST_F(LiveStackTest, AcquireMissTriggersResimulation) {
  connectClient();
  SimfsStatus status;
  ASSERT_TRUE(client_->acquire({"out_0000000005.snc"}, &status).isOk());
  // The file now exists with deterministic content.
  EXPECT_TRUE(store_.exists("out_0000000005.snc"));
  EXPECT_TRUE(daemon_->isAvailable("live", 5));
  // Spatial locality: the whole interval was produced.
  EXPECT_TRUE(daemon_->isAvailable("live", 4));
  ASSERT_TRUE(client_->release("out_0000000005.snc").isOk());
}

TEST_F(LiveStackTest, SecondAcquireIsImmediate) {
  connectClient();
  ASSERT_TRUE(client_->acquire({"out_0000000002.snc"}).isOk());
  ASSERT_TRUE(client_->release("out_0000000002.snc").isOk());
  const auto before = daemon_->stats().jobsLaunched;
  SimfsStatus status;
  ASSERT_TRUE(client_->acquire({"out_0000000002.snc"}, &status).isOk());
  EXPECT_EQ(daemon_->stats().jobsLaunched, before);  // served from disk
  ASSERT_TRUE(client_->release("out_0000000002.snc").isOk());
}

TEST_F(LiveStackTest, AcquireMultipleFilesAcrossIntervals) {
  connectClient();
  const std::vector<std::string> files{
      "out_0000000001.snc", "out_0000000006.snc", "out_0000000011.snc"};
  ASSERT_TRUE(client_->acquire(files).isOk());
  for (const auto& f : files) {
    EXPECT_TRUE(store_.exists(f));
    ASSERT_TRUE(client_->release(f).isOk());
  }
}

TEST_F(LiveStackTest, NonBlockingAcquireWaitAndTest) {
  connectClient();
  auto req = client_->acquireNb({"out_0000000009.snc"});
  ASSERT_TRUE(req.isOk());
  // Eventually the request completes; poll with test() then wait().
  ASSERT_TRUE(client_->wait(*req).isOk());
  EXPECT_TRUE(store_.exists("out_0000000009.snc"));
  // Handle is consumed by wait.
  bool done = false;
  EXPECT_EQ(client_->test(*req, &done).code(), StatusCode::kFailedPrecondition);
}

TEST_F(LiveStackTest, WaitSomeReportsSubsets) {
  connectClient();
  // First file is already on disk; second needs a re-simulation.
  ASSERT_TRUE(client_->acquire({"out_0000000000.snc"}).isOk());
  auto req = client_->acquireNb({"out_0000000000.snc", "out_0000000020.snc"});
  ASSERT_TRUE(req.isOk());
  std::vector<int> ready;
  ASSERT_TRUE(client_->waitSome(*req, &ready).isOk());
  EXPECT_FALSE(ready.empty());
  // Drain the request to completion.
  for (int i = 0; i < 100 && !ready.empty() && ready.size() < 2; ++i) {
    auto st = client_->waitSome(*req, &ready);
    if (st.code() == StatusCode::kFailedPrecondition) break;  // done+erased
    ASSERT_TRUE(st.isOk());
  }
  ASSERT_TRUE(client_->release("out_0000000000.snc").isOk());
}

TEST_F(LiveStackTest, BitrepMatchesRecordedChecksum) {
  connectClient();
  // Produce the file once, record its checksum "at initial run time".
  ASSERT_TRUE(client_->acquire({"out_0000000003.snc"}).isOk());
  const auto content = store_.read("out_0000000003.snc");
  ASSERT_TRUE(content.isOk());
  simmodel::ChecksumMap map;
  map.record("out_0000000003.snc", fnv1a64(*content));
  ASSERT_TRUE(daemon_->setChecksumMap("live", std::move(map)).isOk());
  // The re-simulated file matches (deterministic producer).
  const auto match =
      client_->bitrep("out_0000000003.snc", fnv1a64(*content));
  ASSERT_TRUE(match.isOk());
  EXPECT_TRUE(*match);
  const auto mismatch = client_->bitrep("out_0000000003.snc", 0xDEAD);
  ASSERT_TRUE(mismatch.isOk());
  EXPECT_FALSE(*mismatch);
}

TEST_F(LiveStackTest, ReleaseWithoutAcquireFails) {
  connectClient();
  EXPECT_EQ(client_->release("out_0000000001.snc").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(LiveStackTest, OpenIsNonBlockingThenWaitFileBlocks) {
  connectClient();
  auto info = client_->open("out_0000000013.snc");
  ASSERT_TRUE(info.isOk());
  EXPECT_FALSE(info->available);       // miss: re-simulation started
  EXPECT_GT(info->estimatedWait, 0);   // DV estimated the wait
  ASSERT_TRUE(client_->waitFile("out_0000000013.snc").isOk());
  EXPECT_TRUE(store_.exists("out_0000000013.snc"));
}

// ------------------------------------------------------------------- C API

TEST_F(LiveStackTest, CApiFullLifecycle) {
  SIMFS_SetDaemon(daemon_.get());
  SIMFS_SetFileStore(&store_);

  SIMFS_Context ctx = nullptr;
  ASSERT_EQ(SIMFS_Init("live", &ctx), SIMFS_OK);

  const char* files[] = {"out_0000000007.snc"};
  SIMFS_Status status{};
  ASSERT_EQ(SIMFS_Acquire(ctx, files, 1, &status), SIMFS_OK);
  EXPECT_EQ(status.error_code, 0);
  EXPECT_TRUE(store_.exists("out_0000000007.snc"));

  // Record a checksum so Bitrep has a reference.
  const auto content = store_.read("out_0000000007.snc");
  simmodel::ChecksumMap map;
  map.record("out_0000000007.snc", fnv1a64(*content));
  ASSERT_TRUE(daemon_->setChecksumMap("live", std::move(map)).isOk());
  int flag = 0;
  ASSERT_EQ(SIMFS_Bitrep(ctx, "out_0000000007.snc", &flag), SIMFS_OK);
  EXPECT_EQ(flag, 1);

  ASSERT_EQ(SIMFS_Release(ctx, "out_0000000007.snc"), SIMFS_OK);
  ASSERT_EQ(SIMFS_Finalize(&ctx), SIMFS_OK);
  EXPECT_EQ(ctx, nullptr);
  SIMFS_SetDaemon(nullptr);
  SIMFS_SetFileStore(nullptr);
}

TEST_F(LiveStackTest, CApiNonBlockingRequest) {
  SIMFS_SetDaemon(daemon_.get());
  SIMFS_Context ctx = nullptr;
  ASSERT_EQ(SIMFS_Init("live", &ctx), SIMFS_OK);

  const char* files[] = {"out_0000000015.snc", "out_0000000016.snc"};
  SIMFS_Status status{};
  SIMFS_Req req{};
  ASSERT_EQ(SIMFS_Acquire_nb(ctx, files, 2, &status, &req), SIMFS_OK);
  ASSERT_EQ(SIMFS_Wait(&req, &status), SIMFS_OK);
  EXPECT_TRUE(store_.exists("out_0000000015.snc"));
  EXPECT_TRUE(store_.exists("out_0000000016.snc"));
  ASSERT_EQ(SIMFS_Finalize(&ctx), SIMFS_OK);
  SIMFS_SetDaemon(nullptr);
}

TEST_F(LiveStackTest, CApiValidatesArguments) {
  EXPECT_NE(SIMFS_Init(nullptr, nullptr), SIMFS_OK);
  SIMFS_Context ctx = nullptr;
  EXPECT_NE(SIMFS_Finalize(&ctx), SIMFS_OK);
  EXPECT_NE(SIMFS_Release(nullptr, "x"), SIMFS_OK);
  SIMFS_Req req{};
  EXPECT_NE(SIMFS_Wait(&req, nullptr), SIMFS_OK);
}

// -------------------------------------------------------------- I/O facades

TEST_F(LiveStackTest, TransparentSncdfAnalysisPath) {
  connectClient();
  IoDispatch::instance().installAnalysis(client_.get(), &store_);

  int ncid = -1;
  ASSERT_EQ(snc_open("out_0000000021.snc", 0, &ncid), 0);  // non-blocking
  double buf[16];
  std::size_t n = 0;
  // The read blocks until the re-simulation delivered the file; the
  // default producer emits a text payload, so the typed decode reports
  // kInvalidArgument — but only after the file actually appeared.
  EXPECT_EQ(snc_get_var_double(ncid, buf, 16, &n),
            static_cast<int>(StatusCode::kInvalidArgument));
  EXPECT_TRUE(store_.exists("out_0000000021.snc"));
  ASSERT_EQ(snc_close(ncid), 0);
}

TEST_F(LiveStackTest, TransparentRoundTripWithFieldPayload) {
  // Make the simulator produce genuine SNC1 fields.
  fleet_->setProducer([](const simmodel::JobSpec&, StepIndex step) {
    std::vector<double> field(16, static_cast<double>(step));
    return encodeField(field);
  });
  connectClient();
  IoDispatch::instance().installAnalysis(client_.get(), &store_);

  int ncid = -1;
  ASSERT_EQ(snc_open("out_0000000030.snc", 0, &ncid), 0);
  double buf[32];
  std::size_t n = 0;
  ASSERT_EQ(snc_get_var_double(ncid, buf, 32, &n), 0);
  ASSERT_EQ(n, 16u);
  EXPECT_DOUBLE_EQ(buf[0], 30.0);
  ASSERT_EQ(snc_close(ncid), 0);

  // Same data through the HDF5-flavoured facade.
  const sh5_id h = sh5_fopen("out_0000000030.snc", 0);
  ASSERT_GT(h, 0);
  ASSERT_EQ(sh5_dread(h, buf, 32, &n), 0);
  EXPECT_EQ(n, 16u);
  ASSERT_EQ(sh5_fclose(h), 0);

  // And the ADIOS-flavoured one (schedule + perform).
  const sadios_id a = sadios_open("out_0000000030.snc", "r");
  ASSERT_GT(a, 0);
  std::size_t n2 = 0;
  ASSERT_EQ(sadios_schedule_read(a, buf, 32, &n2), 0);
  ASSERT_EQ(sadios_perform_reads(a), 0);
  EXPECT_EQ(n2, 16u);
  ASSERT_EQ(sadios_close(a), 0);
}

TEST_F(LiveStackTest, SimulatorRoleCreateCloseNotifies) {
  std::vector<std::string> closed;
  IoDispatch::instance().installSimulator(
      [&](const std::string& name) { closed.push_back(name); }, &store_);

  int ncid = -1;
  ASSERT_EQ(snc_create("out_0000000050.snc", 0, &ncid), 0);
  const double values[] = {1.0, 2.0, 3.0};
  ASSERT_EQ(snc_put_var_double(ncid, values, 3), 0);
  ASSERT_EQ(snc_close(ncid), 0);

  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0], "out_0000000050.snc");
  EXPECT_TRUE(store_.exists("out_0000000050.snc"));
  const auto decoded = decodeField(store_.read("out_0000000050.snc").value());
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(decoded->size(), 3u);
}

TEST_F(LiveStackTest, AnalysisRoleCannotCreate) {
  connectClient();
  IoDispatch::instance().installAnalysis(client_.get(), &store_);
  int ncid = -1;
  EXPECT_NE(snc_create("out_0000000001.snc", 0, &ncid), 0);
}

TEST_F(LiveStackTest, PassthroughReadsExistingFiles) {
  ASSERT_TRUE(store_.put("plain.snc", encodeField(std::vector<double>{7.0}))
                  .isOk());
  IoDispatch::instance().installPassthrough(&store_);
  int ncid = -1;
  ASSERT_EQ(snc_open("plain.snc", 0, &ncid), 0);
  double v = 0;
  std::size_t n = 0;
  ASSERT_EQ(snc_get_var_double(ncid, &v, 1, &n), 0);
  EXPECT_DOUBLE_EQ(v, 7.0);
  ASSERT_EQ(snc_close(ncid), 0);
  // Missing files fail at open in passthrough mode.
  EXPECT_NE(snc_open("missing.snc", 0, &ncid), 0);
}

TEST(IoFormatTest, EncodeDecodeRoundTrip) {
  const std::vector<double> values{1.5, -2.25, 1e300, 0.0};
  const auto decoded = decodeField(encodeField(values));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, values);
}

TEST(IoFormatTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(decodeField("not a field").isOk());
  EXPECT_FALSE(decodeField("").isOk());
  auto truncated = encodeField(std::vector<double>{1.0, 2.0});
  truncated.pop_back();
  EXPECT_FALSE(decodeField(truncated).isOk());
}

}  // namespace
}  // namespace simfs::dvlib
