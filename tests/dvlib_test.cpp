// Live-stack tests: SimFSClient / C API / I/O facades against a real
// Daemon with a ThreadedSimulatorFleet (wall-clock, heavily time-scaled).
#include "cluster/ring.hpp"
#include "common/checksum.hpp"
#include "dv/daemon.hpp"
#include "dvlib/iolib.hpp"
#include "dvlib/router.hpp"
#include "dvlib/session.hpp"
#include "dvlib/simfs_capi.hpp"
#include "dvlib/simfs_client.hpp"
#include "simulator/threaded_fleet.hpp"
#include "vfs/file_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <span>
#include <thread>

namespace simfs::dvlib {
namespace {

using simmodel::ContextConfig;
using simmodel::PerfModel;
using simmodel::StepGeometry;

/// Pass-through transport wrapper counting outbound messages by type —
/// pins the wire-level contract of the vectored session API.
class CountingTransport final : public msg::Transport {
 public:
  struct Counters {
    std::mutex mu;
    std::map<msg::MsgType, int> sent;
    int of(msg::MsgType t) {
      std::lock_guard lock(mu);
      const auto it = sent.find(t);
      return it == sent.end() ? 0 : it->second;
    }
  };

  CountingTransport(std::unique_ptr<msg::Transport> inner,
                    std::shared_ptr<Counters> counters)
      : inner_(std::move(inner)), counters_(std::move(counters)) {}

  Status send(const msg::Message& m) override {
    {
      std::lock_guard lock(counters_->mu);
      ++counters_->sent[m.type];
    }
    return inner_->send(m);
  }
  void setHandler(Handler handler) override {
    inner_->setHandler(std::move(handler));
  }
  void setCloseHandler(std::function<void()> handler) override {
    inner_->setCloseHandler(std::move(handler));
  }
  void close() override { inner_->close(); }
  [[nodiscard]] bool isOpen() const override { return inner_->isOpen(); }

 private:
  std::unique_ptr<msg::Transport> inner_;
  std::shared_ptr<Counters> counters_;
};

/// A launcher that records jobs without running them: files stay pending
/// until the test completes them by hand (deterministic cancellation
/// scenarios).
struct RecordingLauncher final : dv::SimLauncher {
  void launch(SimJobId job, const simmodel::JobSpec& spec) override {
    std::lock_guard lock(mu);
    jobs.emplace_back(job, spec);
  }
  void kill(SimJobId) override {}
  std::mutex mu;
  std::vector<std::pair<SimJobId, simmodel::JobSpec>> jobs;
};

ContextConfig liveConfig() {
  ContextConfig cfg;
  cfg.name = "live";
  cfg.geometry = StepGeometry(1, 4, 128);
  cfg.outputStepBytes = 64;
  cfg.cacheQuotaBytes = 0;  // no eviction surprises in these tests
  cfg.sMax = 4;
  // Model times: alpha = 50 ms, tau = 20 ms; the fleet runs them 1:1
  // (they are already tiny).
  cfg.perf = PerfModel(4, 20 * vtime::kMillisecond, 50 * vtime::kMillisecond);
  return cfg;
}

class LiveStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = liveConfig();
    daemon_ = std::make_unique<dv::Daemon>();
    fleet_ = std::make_unique<simulator::ThreadedSimulatorFleet>(
        *daemon_, store_, /*timeScale=*/1.0);
    ASSERT_TRUE(daemon_
                    ->registerContext(
                        std::make_unique<simmodel::SyntheticDriver>(cfg_))
                    .isOk());
    fleet_->registerContext(cfg_);
    daemon_->setLauncher(fleet_.get());
    daemon_->setEvictFn([this](const std::string&, const std::string& f) {
      (void)store_.remove(f);
    });
  }

  void TearDown() override {
    client_.reset();
    IoDispatch::instance().reset();
    fleet_.reset();  // kill + join before the daemon goes away
    daemon_.reset();
  }

  void connectClient() {
    auto c = SimFSClient::connect(daemon_->connectInProc(), cfg_.name);
    ASSERT_TRUE(c.isOk()) << c.status().toString();
    client_ = std::move(*c);
  }

  ContextConfig cfg_;
  vfs::MemFileStore store_;
  std::unique_ptr<dv::Daemon> daemon_;
  std::unique_ptr<simulator::ThreadedSimulatorFleet> fleet_;
  std::unique_ptr<SimFSClient> client_;
};

TEST_F(LiveStackTest, ConnectAndFinalize) {
  connectClient();
  EXPECT_GT(client_->clientId(), 0u);
  EXPECT_EQ(client_->context(), "live");
  client_->finalize();
}

TEST_F(LiveStackTest, ConnectUnknownContextFails) {
  auto c = SimFSClient::connect(daemon_->connectInProc(), "nope");
  EXPECT_FALSE(c.isOk());
  EXPECT_EQ(c.status().code(), StatusCode::kNotFound);
}

TEST_F(LiveStackTest, AcquireMissTriggersResimulation) {
  connectClient();
  SimfsStatus status;
  ASSERT_TRUE(client_->acquire({"out_0000000005.snc"}, &status).isOk());
  // The file now exists with deterministic content.
  EXPECT_TRUE(store_.exists("out_0000000005.snc"));
  EXPECT_TRUE(daemon_->isAvailable("live", 5));
  // Spatial locality: the whole interval was produced.
  EXPECT_TRUE(daemon_->isAvailable("live", 4));
  ASSERT_TRUE(client_->release("out_0000000005.snc").isOk());
}

TEST_F(LiveStackTest, SecondAcquireIsImmediate) {
  connectClient();
  ASSERT_TRUE(client_->acquire({"out_0000000002.snc"}).isOk());
  ASSERT_TRUE(client_->release("out_0000000002.snc").isOk());
  const auto before = daemon_->stats().jobsLaunched;
  SimfsStatus status;
  ASSERT_TRUE(client_->acquire({"out_0000000002.snc"}, &status).isOk());
  EXPECT_EQ(daemon_->stats().jobsLaunched, before);  // served from disk
  ASSERT_TRUE(client_->release("out_0000000002.snc").isOk());
}

TEST_F(LiveStackTest, AcquireMultipleFilesAcrossIntervals) {
  connectClient();
  const std::vector<std::string> files{
      "out_0000000001.snc", "out_0000000006.snc", "out_0000000011.snc"};
  ASSERT_TRUE(client_->acquire(files).isOk());
  for (const auto& f : files) {
    EXPECT_TRUE(store_.exists(f));
    ASSERT_TRUE(client_->release(f).isOk());
  }
}

TEST_F(LiveStackTest, NonBlockingAcquireWaitAndTest) {
  connectClient();
  auto req = client_->acquireNb({"out_0000000009.snc"});
  ASSERT_TRUE(req.isOk());
  // Eventually the request completes; poll with test() then wait().
  ASSERT_TRUE(client_->wait(*req).isOk());
  EXPECT_TRUE(store_.exists("out_0000000009.snc"));
  // Handle is consumed by wait.
  bool done = false;
  EXPECT_EQ(client_->test(*req, &done).code(), StatusCode::kFailedPrecondition);
}

TEST_F(LiveStackTest, WaitSomeReportsSubsets) {
  connectClient();
  // First file is already on disk; second needs a re-simulation.
  ASSERT_TRUE(client_->acquire({"out_0000000000.snc"}).isOk());
  auto req = client_->acquireNb({"out_0000000000.snc", "out_0000000020.snc"});
  ASSERT_TRUE(req.isOk());
  std::vector<int> ready;
  ASSERT_TRUE(client_->waitSome(*req, &ready).isOk());
  EXPECT_FALSE(ready.empty());
  // Drain the request to completion.
  for (int i = 0; i < 100 && !ready.empty() && ready.size() < 2; ++i) {
    auto st = client_->waitSome(*req, &ready);
    if (st.code() == StatusCode::kFailedPrecondition) break;  // done+erased
    ASSERT_TRUE(st.isOk());
  }
  ASSERT_TRUE(client_->release("out_0000000000.snc").isOk());
}

TEST_F(LiveStackTest, BitrepMatchesRecordedChecksum) {
  connectClient();
  // Produce the file once, record its checksum "at initial run time".
  ASSERT_TRUE(client_->acquire({"out_0000000003.snc"}).isOk());
  const auto content = store_.read("out_0000000003.snc");
  ASSERT_TRUE(content.isOk());
  simmodel::ChecksumMap map;
  map.record("out_0000000003.snc", fnv1a64(*content));
  ASSERT_TRUE(daemon_->setChecksumMap("live", std::move(map)).isOk());
  // The re-simulated file matches (deterministic producer).
  const auto match =
      client_->bitrep("out_0000000003.snc", fnv1a64(*content));
  ASSERT_TRUE(match.isOk());
  EXPECT_TRUE(*match);
  const auto mismatch = client_->bitrep("out_0000000003.snc", 0xDEAD);
  ASSERT_TRUE(mismatch.isOk());
  EXPECT_FALSE(*mismatch);
}

TEST_F(LiveStackTest, ReleaseWithoutAcquireFails) {
  connectClient();
  EXPECT_EQ(client_->release("out_0000000001.snc").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(LiveStackTest, OpenIsNonBlockingThenWaitFileBlocks) {
  connectClient();
  auto info = client_->open("out_0000000013.snc");
  ASSERT_TRUE(info.isOk());
  EXPECT_FALSE(info->available);       // miss: re-simulation started
  EXPECT_GT(info->estimatedWait, 0);   // DV estimated the wait
  ASSERT_TRUE(client_->waitFile("out_0000000013.snc").isOk());
  EXPECT_TRUE(store_.exists("out_0000000013.snc"));
}

// ------------------------------------------- vectored async session core

TEST_F(LiveStackTest, VectoredAcquireIsOneRoundTrip) {
  // The acceptance contract of the session redesign: a 64-file acquire
  // puts exactly ONE kOpenBatchReq on the wire — no per-file kOpenReq
  // round trips.
  auto counters = std::make_shared<CountingTransport::Counters>();
  auto transport = std::make_unique<CountingTransport>(
      daemon_->connectInProc(), counters);
  auto client = SimFSClient::connect(std::move(transport), cfg_.name);
  ASSERT_TRUE(client.isOk()) << client.status().toString();

  std::vector<std::string> files;
  for (StepIndex s = 0; s < 64; ++s) {
    files.push_back(cfg_.codec.outputFile(s));
  }
  SimfsStatus status;
  ASSERT_TRUE((*client)->acquire(files, &status).isOk());
  for (const auto& f : files) EXPECT_TRUE(store_.exists(f));

  EXPECT_EQ(counters->of(msg::MsgType::kOpenBatchReq), 1);
  EXPECT_EQ(counters->of(msg::MsgType::kOpenReq), 0);
  EXPECT_EQ(counters->of(msg::MsgType::kAcquireReq), 0);

  for (const auto& f : files) ASSERT_TRUE((*client)->release(f).isOk());
  (*client)->finalize();
}

TEST_F(LiveStackTest, BatchedReleaseIsOneRoundTrip) {
  // The release mirror of the vectored acquire: N files travel in ONE
  // kReleaseReq, and the daemon drops every reference under one
  // shard-lock acquisition.
  auto counters = std::make_shared<CountingTransport::Counters>();
  auto transport = std::make_unique<CountingTransport>(
      daemon_->connectInProc(), counters);
  auto client = SimFSClient::connect(std::move(transport), cfg_.name);
  ASSERT_TRUE(client.isOk()) << client.status().toString();

  std::vector<std::string> files;
  for (StepIndex s = 0; s < 8; ++s) {
    files.push_back(cfg_.codec.outputFile(s));
  }
  ASSERT_TRUE((*client)->acquire(files).isOk());
  ASSERT_TRUE((*client)->session()->release(files).isOk());
  EXPECT_EQ(counters->of(msg::MsgType::kReleaseReq), 1);

  // Every reference is gone: releasing any file again must fail exactly
  // like a release-without-open.
  for (const auto& f : files) {
    EXPECT_EQ((*client)->release(f).code(), StatusCode::kFailedPrecondition);
  }
  EXPECT_EQ(counters->of(msg::MsgType::kReleaseReq), 9);
  (*client)->finalize();
}

TEST_F(LiveStackTest, BatchedReleaseReportsWorstStatusAndFreedCount) {
  connectClient();
  const std::string good = "out_0000000002.snc";
  ASSERT_TRUE(client_->acquire({good}).isOk());
  // One held file, one never-opened file: the batch must release the
  // held reference AND surface the per-file failure as the worst status.
  const std::vector<std::string> batch = {good, "out_0000000003.snc"};
  EXPECT_EQ(client_->session()->release(batch).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(client_->release(good).code(), StatusCode::kFailedPrecondition);
}

TEST_F(LiveStackTest, PartialAcquireFailureUnwindsRegisteredInterest) {
  // Regression: when file i of an acquire fails, files 0..i-1 already
  // registered DV interest (references / waiter entries); a failed
  // acquire must release them again, or the steps stay pinned forever.
  connectClient();
  const std::string good = "out_0000000002.snc";
  SimfsStatus status;
  EXPECT_FALSE(client_->acquire({good, "definitely-not-a-step"}, &status)
                   .isOk());
  EXPECT_FALSE(status.error.isOk());
  // The good file's reference was unwound: releasing it again must fail
  // exactly like a release-without-open.
  EXPECT_EQ(client_->release(good).code(), StatusCode::kFailedPrecondition);
}

TEST_F(LiveStackTest, CancelReleasesDeliveredReference) {
  connectClient();
  const std::string f = "out_0000000004.snc";
  ASSERT_TRUE(client_->acquire({f}).isOk());  // reference #1

  // A second, vectored acquire of the now-available file takes another
  // reference; cancelling the handle must give exactly that one back.
  auto handle = client_->session()->acquireAsync({f});
  ASSERT_TRUE(handle.wait().isOk());
  const auto p = handle.probe(0);
  EXPECT_TRUE(p.available);
  ASSERT_TRUE(handle.cancel().isOk());
  EXPECT_TRUE(handle.complete());

  ASSERT_TRUE(client_->release(f).isOk());  // reference #1 still held
  EXPECT_EQ(client_->release(f).code(), StatusCode::kFailedPrecondition);
}

TEST_F(LiveStackTest, ThenContinuationFiresOnCompletion) {
  connectClient();
  auto handle = client_->session()->acquireAsync({"out_0000000017.snc"});
  std::promise<Status> completed;
  handle.then([&](const Status& st) { completed.set_value(st); });
  auto fut = completed.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_TRUE(fut.get().isOk());
  // Registering on an already-complete handle fires inline.
  bool inlineFired = false;
  handle.then([&](const Status&) { inlineFired = true; });
  EXPECT_TRUE(inlineFired);
  ASSERT_TRUE(handle.cancel().isOk());  // drop the reference again
}

TEST_F(LiveStackTest, AcquireNbAckCarriesPerFileEstimates) {
  connectClient();
  SimfsStatus status;
  auto req = client_->acquireNb({"out_0000000025.snc"}, &status);
  ASSERT_TRUE(req.isOk());
  // The batch ack came back within the acquireNb call: a miss carries
  // the DV's estimated wait.
  EXPECT_TRUE(status.error.isOk());
  EXPECT_GT(status.estimatedWait, 0);
  ASSERT_TRUE(client_->wait(*req).isOk());
  ASSERT_TRUE(client_->release("out_0000000025.snc").isOk());
}

/// Daemon without a completing fleet: jobs stay pending until the test
/// drives the simulator events by hand — deterministic cancellation and
/// deadline scenarios.
class PendingStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = liveConfig();
    daemon_ = std::make_unique<dv::Daemon>();
    ASSERT_TRUE(daemon_
                    ->registerContext(
                        std::make_unique<simmodel::SyntheticDriver>(cfg_))
                    .isOk());
    daemon_->setLauncher(&launcher_);
  }

  void TearDown() override {
    client_.reset();
    daemon_.reset();
  }

  void connectClient() {
    auto c = SimFSClient::connect(daemon_->connectInProc(), cfg_.name);
    ASSERT_TRUE(c.isOk()) << c.status().toString();
    client_ = std::move(*c);
  }

  /// Fully-async opens race the worker pool: wait until the daemon has
  /// actually launched `n` jobs before replaying them.
  void awaitRecordedJobs(std::size_t n) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (;;) {
      {
        std::lock_guard lock(launcher_.mu);
        if (launcher_.jobs.size() >= n) return;
      }
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "job never reached the launcher";
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  /// Replays every recorded job as a completed simulation.
  void completeRecordedJobs() {
    std::vector<std::pair<SimJobId, simmodel::JobSpec>> jobs;
    {
      std::lock_guard lock(launcher_.mu);
      jobs = launcher_.jobs;
    }
    for (const auto& [id, spec] : jobs) {
      daemon_->simulationStarted(id);
      for (StepIndex s = spec.startStep; s <= spec.stopStep; ++s) {
        daemon_->simulationFileWritten(id, cfg_.codec.outputFile(s));
      }
      daemon_->simulationFinished(id, Status::ok());
    }
  }

  void awaitAvailable(StepIndex step) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!daemon_->isAvailable(cfg_.name, step) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(daemon_->isAvailable(cfg_.name, step));
  }

  ContextConfig cfg_;
  RecordingLauncher launcher_;
  std::unique_ptr<dv::Daemon> daemon_;
  std::unique_ptr<SimFSClient> client_;
};

TEST_F(PendingStackTest, CancelPendingAcquireRemovesWaiter) {
  connectClient();
  const std::string f = "out_0000000006.snc";
  SimfsStatus status;
  auto req = client_->acquireNb({f}, &status);
  ASSERT_TRUE(req.isOk());
  EXPECT_GT(status.estimatedWait, 0);  // pending: job recorded, not run

  // Cancel while the step is still owed: the DV must drop the waiter
  // entry, so when the file later materializes no reference is taken on
  // this client's behalf.
  ASSERT_TRUE(client_->cancel(*req).isOk());
  // The request handle is consumed.
  EXPECT_EQ(client_->wait(*req).code(), StatusCode::kFailedPrecondition);

  completeRecordedJobs();
  awaitAvailable(6);
  // No reference was registered for the cancelled acquire: a cancelled
  // acquire cannot pin cache slots.
  EXPECT_EQ(client_->release(f).code(), StatusCode::kFailedPrecondition);
}

TEST_F(PendingStackTest, WaitDeadlineExpiresWithoutCompleting) {
  connectClient();
  auto handle = client_->session()->acquireAsync({"out_0000000009.snc"});
  SimfsStatus status;
  // 5 ms deadline against a job that never runs: the wait must time out
  // and leave the handle live.
  const auto st =
      handle.wait(&status, /*timeoutNs=*/5 * vtime::kMillisecond);
  EXPECT_EQ(st.code(), StatusCode::kTimedOut);
  EXPECT_FALSE(handle.complete());
  // The DV's estimate (from the ack) seeds a real deadline choice.
  EXPECT_GT(handle.estimatedWait(), 0);
  ASSERT_TRUE(handle.cancel().isOk());
  EXPECT_TRUE(handle.complete());
  bool done = false;
  EXPECT_EQ(handle.test(&done, nullptr).code(), StatusCode::kCancelled);
  EXPECT_TRUE(done);
}

TEST_F(PendingStackTest, DaemonDeathFailsOutstandingWaitsInsteadOfHanging) {
  // Regression for the async redesign: the session installs a close
  // handler, so when the daemon dies mid-wait every outstanding acquire
  // completes instead of blocking forever (the old per-file calls were
  // bounded by the 30s call timeout). A router-less session has no way
  // to re-resolve the owner, so the outcome is the terminal
  // kUnreachable, not the retryable kUnavailable.
  connectClient();
  auto handle = client_->session()->acquireAsync({"out_0000000014.snc"});
  ASSERT_TRUE(handle.waitAck(nullptr).isOk());
  EXPECT_FALSE(handle.complete());  // pending: the job never runs

  daemon_->stop();
  daemon_.reset();  // tears every transport down

  const Status st = handle.wait();  // must return promptly
  EXPECT_EQ(st.code(), StatusCode::kUnreachable);
  EXPECT_TRUE(handle.complete());
  // The transparent-mode wait wakes too.
  EXPECT_EQ(client_->waitFile("out_0000000014.snc").code(),
            StatusCode::kUnreachable);
}

TEST_F(PendingStackTest, FinalizeWakesBlockedWaiters) {
  connectClient();
  auto handle = client_->session()->acquireAsync({"out_0000000018.snc"});
  ASSERT_TRUE(handle.waitAck(nullptr).isOk());
  std::thread finalizer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    client_->finalize();
  });
  const Status st = handle.wait();  // woken by finalize, not hung
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  finalizer.join();
}

TEST_F(PendingStackTest, FacadeCloseWithoutReadCancelsPendingOpen) {
  // snc_open pipelines (no ack wait); closing the handle without ever
  // reading must cancel the open so the DV registers no lasting
  // interest for it.
  connectClient();
  vfs::MemFileStore store;
  IoDispatch::instance().installAnalysis(client_.get(), &store);
  int ncid = -1;
  ASSERT_EQ(snc_open("out_0000000012.snc", 0, &ncid), 0);
  ASSERT_EQ(snc_close(ncid), 0);
  IoDispatch::instance().reset();

  awaitRecordedJobs(1);
  completeRecordedJobs();
  awaitAvailable(12);
  EXPECT_EQ(client_->release("out_0000000012.snc").code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------------------- C API

TEST_F(LiveStackTest, CApiFullLifecycle) {
  SIMFS_SetDaemon(daemon_.get());
  SIMFS_SetFileStore(&store_);

  SIMFS_Context ctx = nullptr;
  ASSERT_EQ(SIMFS_Init("live", &ctx), SIMFS_OK);

  const char* files[] = {"out_0000000007.snc"};
  SIMFS_Status status{};
  ASSERT_EQ(SIMFS_Acquire(ctx, files, 1, &status), SIMFS_OK);
  EXPECT_EQ(status.error_code, 0);
  EXPECT_TRUE(store_.exists("out_0000000007.snc"));

  // Record a checksum so Bitrep has a reference.
  const auto content = store_.read("out_0000000007.snc");
  simmodel::ChecksumMap map;
  map.record("out_0000000007.snc", fnv1a64(*content));
  ASSERT_TRUE(daemon_->setChecksumMap("live", std::move(map)).isOk());
  int flag = 0;
  ASSERT_EQ(SIMFS_Bitrep(ctx, "out_0000000007.snc", &flag), SIMFS_OK);
  EXPECT_EQ(flag, 1);

  ASSERT_EQ(SIMFS_Release(ctx, "out_0000000007.snc"), SIMFS_OK);
  ASSERT_EQ(SIMFS_Finalize(&ctx), SIMFS_OK);
  EXPECT_EQ(ctx, nullptr);
  SIMFS_SetDaemon(nullptr);
  SIMFS_SetFileStore(nullptr);
}

TEST_F(LiveStackTest, CApiNonBlockingRequest) {
  SIMFS_SetDaemon(daemon_.get());
  SIMFS_Context ctx = nullptr;
  ASSERT_EQ(SIMFS_Init("live", &ctx), SIMFS_OK);

  const char* files[] = {"out_0000000015.snc", "out_0000000016.snc"};
  SIMFS_Status status{};
  SIMFS_Req req{};
  ASSERT_EQ(SIMFS_Acquire_nb(ctx, files, 2, &status, &req), SIMFS_OK);
  ASSERT_EQ(SIMFS_Wait(&req, &status), SIMFS_OK);
  EXPECT_TRUE(store_.exists("out_0000000015.snc"));
  EXPECT_TRUE(store_.exists("out_0000000016.snc"));
  ASSERT_EQ(SIMFS_Finalize(&ctx), SIMFS_OK);
  SIMFS_SetDaemon(nullptr);
}

TEST_F(LiveStackTest, CApiValidatesArguments) {
  EXPECT_NE(SIMFS_Init(nullptr, nullptr), SIMFS_OK);
  SIMFS_Context ctx = nullptr;
  EXPECT_NE(SIMFS_Finalize(&ctx), SIMFS_OK);
  EXPECT_NE(SIMFS_Release(nullptr, "x"), SIMFS_OK);
  SIMFS_Req req{};
  EXPECT_NE(SIMFS_Wait(&req, nullptr), SIMFS_OK);
}

// -------------------------------------------------------------- I/O facades

TEST_F(LiveStackTest, TransparentSncdfAnalysisPath) {
  connectClient();
  IoDispatch::instance().installAnalysis(client_.get(), &store_);

  int ncid = -1;
  ASSERT_EQ(snc_open("out_0000000021.snc", 0, &ncid), 0);  // non-blocking
  double buf[16];
  std::size_t n = 0;
  // The read blocks until the re-simulation delivered the file; the
  // default producer emits a text payload, so the typed decode reports
  // kInvalidArgument — but only after the file actually appeared.
  EXPECT_EQ(snc_get_var_double(ncid, buf, 16, &n),
            static_cast<int>(StatusCode::kInvalidArgument));
  EXPECT_TRUE(store_.exists("out_0000000021.snc"));
  ASSERT_EQ(snc_close(ncid), 0);
}

TEST_F(LiveStackTest, TransparentRoundTripWithFieldPayload) {
  // Make the simulator produce genuine SNC1 fields.
  fleet_->setProducer([](const simmodel::JobSpec&, StepIndex step) {
    std::vector<double> field(16, static_cast<double>(step));
    return encodeField(field);
  });
  connectClient();
  IoDispatch::instance().installAnalysis(client_.get(), &store_);

  int ncid = -1;
  ASSERT_EQ(snc_open("out_0000000030.snc", 0, &ncid), 0);
  double buf[32];
  std::size_t n = 0;
  ASSERT_EQ(snc_get_var_double(ncid, buf, 32, &n), 0);
  ASSERT_EQ(n, 16u);
  EXPECT_DOUBLE_EQ(buf[0], 30.0);
  ASSERT_EQ(snc_close(ncid), 0);

  // Same data through the HDF5-flavoured facade.
  const sh5_id h = sh5_fopen("out_0000000030.snc", 0);
  ASSERT_GT(h, 0);
  ASSERT_EQ(sh5_dread(h, buf, 32, &n), 0);
  EXPECT_EQ(n, 16u);
  ASSERT_EQ(sh5_fclose(h), 0);

  // And the ADIOS-flavoured one (schedule + perform).
  const sadios_id a = sadios_open("out_0000000030.snc", "r");
  ASSERT_GT(a, 0);
  std::size_t n2 = 0;
  ASSERT_EQ(sadios_schedule_read(a, buf, 32, &n2), 0);
  ASSERT_EQ(sadios_perform_reads(a), 0);
  EXPECT_EQ(n2, 16u);
  ASSERT_EQ(sadios_close(a), 0);
}

TEST_F(LiveStackTest, SimulatorRoleCreateCloseNotifies) {
  std::vector<std::string> closed;
  IoDispatch::instance().installSimulator(
      [&](const std::string& name) { closed.push_back(name); }, &store_);

  int ncid = -1;
  ASSERT_EQ(snc_create("out_0000000050.snc", 0, &ncid), 0);
  const double values[] = {1.0, 2.0, 3.0};
  ASSERT_EQ(snc_put_var_double(ncid, values, 3), 0);
  ASSERT_EQ(snc_close(ncid), 0);

  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0], "out_0000000050.snc");
  EXPECT_TRUE(store_.exists("out_0000000050.snc"));
  const auto decoded = decodeField(store_.read("out_0000000050.snc").value());
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(decoded->size(), 3u);
}

TEST_F(LiveStackTest, AnalysisRoleCannotCreate) {
  connectClient();
  IoDispatch::instance().installAnalysis(client_.get(), &store_);
  int ncid = -1;
  EXPECT_NE(snc_create("out_0000000001.snc", 0, &ncid), 0);
}

TEST_F(LiveStackTest, PassthroughReadsExistingFiles) {
  ASSERT_TRUE(store_.put("plain.snc", encodeField(std::vector<double>{7.0}))
                  .isOk());
  IoDispatch::instance().installPassthrough(&store_);
  int ncid = -1;
  ASSERT_EQ(snc_open("plain.snc", 0, &ncid), 0);
  double v = 0;
  std::size_t n = 0;
  ASSERT_EQ(snc_get_var_double(ncid, &v, 1, &n), 0);
  EXPECT_DOUBLE_EQ(v, 7.0);
  ASSERT_EQ(snc_close(ncid), 0);
  // Missing files fail at open in passthrough mode.
  EXPECT_NE(snc_open("missing.snc", 0, &ncid), 0);
}

/// A transport that sheds the first `shedCount` open batches exactly like
/// an overloaded shard (whole-batch kUnavailable, no outcome pairs), then
/// acks every file as immediately available. Hellos succeed inline.
class SheddingTransport final : public msg::Transport {
 public:
  explicit SheddingTransport(int shedCount) : shedLeft_(shedCount) {}

  Status send(const msg::Message& m) override {
    msg::Message reply;
    reply.requestId = m.requestId;
    switch (m.type) {
      case msg::MsgType::kHello:
        reply.type = msg::MsgType::kHelloAck;
        reply.intArg = 7;  // clientId
        break;
      case msg::MsgType::kOpenBatchReq: {
        std::lock_guard lock(mu_);
        batchIds_.push_back(m.requestId);
        reply.type = msg::MsgType::kOpenBatchAck;
        if (shedLeft_ > 0) {
          --shedLeft_;
          reply.code = static_cast<std::int32_t>(StatusCode::kUnavailable);
          reply.text = "dv: shard queue over capacity";
        } else {
          for (std::size_t i = 0; i < m.files.size(); ++i) {
            reply.ints.push_back(
                (static_cast<std::int64_t>(StatusCode::kOk) << 1) | 1);
            reply.ints.push_back(0);
          }
        }
        break;
      }
      default:
        return Status::ok();  // fire-and-forget traffic needs no reply
    }
    Handler h;
    {
      std::lock_guard lock(mu_);
      h = handler_;
    }
    if (h) h(std::move(reply));
    return Status::ok();
  }
  void setHandler(Handler handler) override {
    std::lock_guard lock(mu_);
    handler_ = std::move(handler);
  }
  void setCloseHandler(std::function<void()>) override {}
  void close() override { open_ = false; }
  [[nodiscard]] bool isOpen() const override { return open_; }

  std::vector<std::uint64_t> batchIds() {
    std::lock_guard lock(mu_);
    return batchIds_;
  }

 private:
  std::mutex mu_;
  Handler handler_;
  std::vector<std::uint64_t> batchIds_;
  int shedLeft_;
  std::atomic<bool> open_{true};
};

TEST(SessionRetryTest, ShedBatchesResendUnderSameRequestId) {
  auto owned = std::make_unique<SheddingTransport>(2);
  auto* t = owned.get();
  auto session = Session::connect(std::move(owned), "live");
  ASSERT_TRUE(session.isOk()) << session.status().toString();
  (*session)->setRetryPolicy(/*budget=*/3, /*baseBackoffNs=*/1'000'000);
  auto handle = (*session)->acquireAsync({"out_0000000001.snc"});
  const Status st = handle.wait();
  EXPECT_TRUE(st.isOk()) << st.toString();
  // Two sheds, one success — all three sends carry the SAME requestId,
  // which is what makes the daemon-side dedup window able to absorb a
  // resend that raced a lost ack.
  const auto ids = t->batchIds();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_EQ(ids[1], ids[2]);
  (*session)->finalize();
}

TEST(SessionRetryTest, ShedBeyondBudgetCompletesUnreachable) {
  auto owned = std::make_unique<SheddingTransport>(1'000'000);
  auto* t = owned.get();
  auto session = Session::connect(std::move(owned), "live");
  ASSERT_TRUE(session.isOk()) << session.status().toString();
  (*session)->setRetryPolicy(/*budget=*/2, /*baseBackoffNs=*/1'000'000);
  auto handle = (*session)->acquireAsync({"out_0000000001.snc"});
  const Status st = handle.wait();  // must complete, not hang
  EXPECT_EQ(st.code(), StatusCode::kUnreachable);
  EXPECT_EQ(t->batchIds().size(), 3u);  // the original + 2 budgeted resends
  (*session)->finalize();
}

// ------------------------------------------- replica lease fan-out (client)

/// Per-endpoint traffic record of a scripted federation node.
struct ScriptedNode {
  std::atomic<int> batches{0};
  std::atomic<int> cancels{0};
  std::atomic<int> releases{0};
  std::atomic<std::uint64_t> lastBatchId{0};
  std::atomic<bool> replicaCapSeen{false};
};

/// A three-node federation where every endpoint is a scripted in-proc
/// transport, like SheddingTransport but ring-aware: the owner pushes
/// the requestId-0 kRingUpdate that advertises R before acking the
/// hello (the daemon's bind ordering), acks batches as pending with a
/// long estimated wait and retires them with kFileReady — so the
/// session's power-of-two-choices picker deterministically prefers a
/// replica once the links are up. Replicas ack everything resident, or
/// answer whole-batch kNotLeased when `replicasAnswerNotLeased` is set.
struct ScriptedFederation {
  static constexpr std::int64_t kOwnerWait = 50'000'000;  // 50 ms

  cluster::Ring ring;
  std::string ownerId;
  std::map<std::string, ScriptedNode> nodes;  // by endpoint; fixed keys
  std::vector<std::unique_ptr<msg::Transport>> serverEnds;
  std::mutex mu;
  std::atomic<bool> replicasAnswerNotLeased{false};

  ScriptedFederation()
      : ring(cluster::Ring::make(
                 {{"dvA", "ep-A"}, {"dvB", "ep-B"}, {"dvC", "ep-C"}},
                 /*version=*/2)
                 .value()),
        ownerId(ring.ownerOf("live").id) {
    for (const auto& n : ring.nodes()) nodes[n.endpoint];
  }

  ScriptedNode& at(const std::string& nodeId) {
    return nodes.at(ring.find(nodeId)->endpoint);
  }

  std::shared_ptr<NodeRouter> router() {
    std::vector<std::string> entries;
    for (const auto& n : ring.nodes()) {
      entries.push_back(n.id + "=" + n.endpoint);
    }
    const std::string ownerEp = ring.find(ownerId)->endpoint;
    return std::make_shared<NodeRouter>(
        ring,
        [this, entries, ownerEp](const std::string& endpoint)
            -> Result<std::unique_ptr<msg::Transport>> {
          auto [serverEnd, clientEnd] = msg::makeInProcPair();
          msg::Transport* raw = serverEnd.get();
          ScriptedNode* node = &nodes.at(endpoint);
          const bool isOwner = endpoint == ownerEp;
          raw->setHandler([this, raw, node, isOwner,
                           entries](msg::Message&& m) {
            msg::Message reply;
            reply.requestId = m.requestId;
            switch (m.type) {
              case msg::MsgType::kHello: {
                if ((m.intArg2 & msg::kHelloCapReplica) != 0) {
                  node->replicaCapSeen = true;
                }
                if (isOwner) {
                  msg::Message push;
                  push.type = msg::MsgType::kRingUpdate;
                  push.requestId = 0;
                  push.files = entries;
                  push.intArg = 2;   // ring version
                  push.intArg2 = 2;  // R
                  (void)raw->send(push);
                }
                reply.type = msg::MsgType::kHelloAck;
                reply.intArg = 7;  // clientId
                (void)raw->send(reply);
                break;
              }
              case msg::MsgType::kOpenBatchReq: {
                ++node->batches;
                node->lastBatchId = m.requestId;
                reply.type = msg::MsgType::kOpenBatchAck;
                if (!isOwner && replicasAnswerNotLeased) {
                  reply.code =
                      static_cast<std::int32_t>(StatusCode::kNotLeased);
                  (void)raw->send(reply);
                  break;
                }
                for (std::size_t i = 0; i < m.files.size(); ++i) {
                  if (isOwner) {
                    // Pending with a long wait: the picker learns the
                    // owner is loaded, kFileReady below completes it.
                    reply.ints.push_back(
                        static_cast<std::int64_t>(StatusCode::kOk) << 1);
                    reply.ints.push_back(kOwnerWait);
                  } else {
                    reply.ints.push_back(
                        (static_cast<std::int64_t>(StatusCode::kOk) << 1) |
                        1);
                    reply.ints.push_back(0);
                  }
                }
                (void)raw->send(reply);
                if (isOwner) {
                  for (const auto& f : m.files) {
                    msg::Message ready;
                    ready.type = msg::MsgType::kFileReady;
                    ready.requestId = 0;
                    ready.files = {f};
                    (void)raw->send(ready);
                  }
                }
                break;
              }
              case msg::MsgType::kReleaseReq: {
                ++node->releases;
                reply.type = msg::MsgType::kReleaseAck;
                (void)raw->send(reply);
                break;
              }
              case msg::MsgType::kCancelReq:
                ++node->cancels;  // fire-and-forget: no reply
                break;
              default:
                break;  // closeNotify and friends need no answer
            }
          });
          std::lock_guard lock(mu);
          serverEnds.push_back(std::move(serverEnd));
          return std::move(clientEnd);
        });
  }
};

bool spinUntil(const std::function<bool()>& pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

TEST(ReplicaSpreadTest, LeasedVectoredAcquireIsOneRequestToOneEndpoint) {
  ScriptedFederation fed;
  auto connected = Session::connect(fed.router(), "live");
  ASSERT_TRUE(connected.isOk()) << connected.status().toString();
  std::shared_ptr<Session> session = std::move(*connected);

  // Replica links are dialed lazily off the first batch, which still
  // goes to the owner; its ack leaves ownerWait_ at 50 ms.
  SimfsStatus status;
  ASSERT_TRUE(session->acquire({"prime.snc"}, &status).isOk())
      << status.error.toString();
  ASSERT_TRUE(spinUntil([&] { return session->replicaEndpoints() == 2; }))
      << "replica links never came up";

  std::vector<std::string> files;
  for (int i = 0; i < 64; ++i) {
    files.push_back("spread_" + std::to_string(i) + ".snc");
  }
  ASSERT_TRUE(session->acquire(files, &status).isOk())
      << status.error.toString();

  // The 64-file acquire stayed ONE kOpenBatchReq on ONE endpoint — the
  // vectored wire contract survives the replica spread, and with the
  // owner loaded the p2c picker lands it on a leased replica.
  ScriptedNode& owner = fed.at(fed.ownerId);
  EXPECT_EQ(owner.batches.load(), 1);  // the priming batch only
  int replicaBatches = 0;
  ScriptedNode* serving = nullptr;
  for (auto& [ep, node] : fed.nodes) {
    if (&node == &owner) continue;
    replicaBatches += node.batches.load();
    if (node.batches.load() > 0) serving = &node;
  }
  ASSERT_EQ(replicaBatches, 1);
  ASSERT_NE(serving, nullptr);
  EXPECT_TRUE(serving->replicaCapSeen.load())
      << "replica link must hello with kHelloCapReplica";
  EXPECT_NE(serving->lastBatchId.load(), 0u);

  // release() unwinds the references on the node that REGISTERED them:
  // one kReleaseReq at the serving replica, none at the owner (which
  // never heard of these opens).
  ASSERT_TRUE(
      session->release(std::span<const std::string>(files)).isOk());
  EXPECT_EQ(serving->releases.load(), 1);
  EXPECT_EQ(owner.releases.load(), 0);
  session->finalize();
}

TEST(ReplicaSpreadTest, RevokedLeaseMidFlightRetriesOnOwner) {
  ScriptedFederation fed;
  fed.replicasAnswerNotLeased = true;  // every replica lost its lease
  auto connected = Session::connect(fed.router(), "live");
  ASSERT_TRUE(connected.isOk()) << connected.status().toString();
  std::shared_ptr<Session> session = std::move(*connected);

  SimfsStatus status;
  ASSERT_TRUE(session->acquire({"prime.snc"}, &status).isOk())
      << status.error.toString();
  ASSERT_TRUE(spinUntil([&] { return session->replicaEndpoints() == 2; }))
      << "replica links never came up";

  // The batch lands on a replica (owner is loaded), bounces with
  // kNotLeased, and must complete on the owner without surfacing any of
  // that to the caller.
  auto handle = session->acquireAsync({"revoked.snc"});
  const Status st = handle.wait();
  EXPECT_TRUE(st.isOk()) << st.toString();

  ScriptedNode& owner = fed.at(fed.ownerId);
  int replicaBatches = 0;
  ScriptedNode* bounced = nullptr;
  for (auto& [ep, node] : fed.nodes) {
    if (&node == &owner) continue;
    replicaBatches += node.batches.load();
    if (node.batches.load() > 0) bounced = &node;
  }
  ASSERT_EQ(replicaBatches, 1);
  ASSERT_NE(bounced, nullptr);
  // The fallback unwound the replica first (cancel), then resent the
  // batch to the owner under the SAME requestId — the dedup window
  // absorbs a replica that raced its revocation and answered anyway.
  EXPECT_EQ(bounced->cancels.load(), 1);
  EXPECT_EQ(owner.batches.load(), 2);  // priming + the retried batch
  EXPECT_NE(bounced->lastBatchId.load(), 0u);
  EXPECT_EQ(owner.lastBatchId.load(), bounced->lastBatchId.load());
  session->finalize();
}

TEST(DeadlineReapTest, ServerReapsExpiredWaitersWithTimedOut) {
  // The reap interval is read at daemon construction; shrink it so the
  // sweep fires within test time.
  ::setenv("SIMFS_DV_REAP_MS", "20", 1);
  auto cfg = liveConfig();
  auto daemon = std::make_unique<dv::Daemon>();
  ::unsetenv("SIMFS_DV_REAP_MS");
  ASSERT_TRUE(
      daemon->registerContext(std::make_unique<simmodel::SyntheticDriver>(cfg))
          .isOk());
  RecordingLauncher launcher;  // jobs never run: the file stays pending
  daemon->setLauncher(&launcher);
  auto c = SimFSClient::connect(daemon->connectInProc(), cfg.name);
  ASSERT_TRUE(c.isOk()) << c.status().toString();
  (*c)->session()->setOpDeadline(50 * vtime::kMillisecond);
  auto handle = (*c)->session()->acquireAsync({"out_0000000014.snc"});
  ASSERT_TRUE(handle.waitAck(nullptr).isOk());
  EXPECT_FALSE(handle.complete());  // pending on the never-run job
  // The daemon's reap sweep expires the waiter and notifies kTimedOut —
  // the client needs no timer of its own.
  const Status st = handle.wait();
  EXPECT_EQ(st.code(), StatusCode::kTimedOut);
  (*c)->finalize();
}

TEST(IoFormatTest, EncodeDecodeRoundTrip) {
  const std::vector<double> values{1.5, -2.25, 1e300, 0.0};
  const auto decoded = decodeField(encodeField(values));
  ASSERT_TRUE(decoded.isOk());
  EXPECT_EQ(*decoded, values);
}

TEST(IoFormatTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(decodeField("not a field").isOk());
  EXPECT_FALSE(decodeField("").isOk());
  auto truncated = encodeField(std::vector<double>{1.0, 2.0});
  truncated.pop_back();
  EXPECT_FALSE(decodeField(truncated).isOk());
}

}  // namespace
}  // namespace simfs::dvlib
