// Failure-domain tests: a federated DV under injected transport faults
// and node kills must degrade, not wedge.
//
//   * With recv delays and probabilistic send failures injected
//     process-wide (the SIMFS_FAULTS machinery, driven through
//     fault::configure), clients that retry at the application level
//     complete every access, and every accessed step ends up available
//     on its ring owner — fault recovery changes latency, never the
//     final state.
//   * Killing a ring member mid-run bounds the damage to its own
//     failure domain: clients of its contexts complete with errors
//     within the retry budget (no hangs), while the surviving nodes
//     serve exactly the availability a fault-free run of the same
//     accesses produces.
//
// All faults are seeded, so a given schedule replays; assertions are on
// recovery, not luck.
#include "cluster/ring.hpp"
#include "common/fault.hpp"
#include "dv/daemon.hpp"
#include "dvlib/router.hpp"
#include "dvlib/session.hpp"
#include "dvlib/simfs_client.hpp"
#include "msg/transport.hpp"
#include "simulator/threaded_fleet.hpp"
#include "vfs/file_store.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace simfs::dv {
namespace {

using simmodel::ContextConfig;
using simmodel::PerfModel;
using simmodel::StepGeometry;

constexpr int kNodes = 3;
constexpr int kContexts = 6;
constexpr StepIndex kStepSpan = 48;

std::string contextName(int i) { return "ctx" + std::to_string(i); }

ContextConfig faultConfig(int i) {
  ContextConfig cfg;
  cfg.name = contextName(i);
  cfg.geometry = StepGeometry(1, 4, 64);
  cfg.outputStepBytes = 64;
  cfg.cacheQuotaBytes = 0;  // no eviction: availability is the produced union
  cfg.sMax = 8;
  cfg.prefetchEnabled = false;
  cfg.perf = PerfModel(2, 1 * vtime::kMillisecond, 2 * vtime::kMillisecond);
  return cfg;
}

/// Deterministic per-context access schedules; phase 1 runs before the
/// node kill, phase 3 after it (phase 2 is the dead-node probe).
std::vector<StepIndex> accessesOf(int ctx, int phase) {
  std::vector<StepIndex> steps;
  if (phase == 1) {
    for (int k = 0; k < 6; ++k) {
      steps.push_back(static_cast<StepIndex>((ctx * 7 + k * 3) % kStepSpan));
    }
  } else {
    for (int k = 0; k < 4; ++k) {
      steps.push_back(
          static_cast<StepIndex>((ctx * 5 + k * 11 + 1) % kStepSpan));
    }
  }
  return steps;
}

struct Node {
  std::unique_ptr<Daemon> daemon;
  std::unique_ptr<vfs::MemFileStore> store;
  std::unique_ptr<simulator::ThreadedSimulatorFleet> fleet;
  std::string socketPath;
};

std::string socketPathFor(const std::string& tag, int i) {
  return "/tmp/simfs_fault_" + tag + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(i) + ".sock";
}

cluster::Ring fullRing(const std::string& tag) {
  std::vector<cluster::NodeInfo> members;
  for (int i = 0; i < kNodes; ++i) {
    members.push_back({"dv" + std::to_string(i), socketPathFor(tag, i)});
  }
  return cluster::Ring::make(std::move(members), /*version=*/2).value();
}

std::vector<Node> startCluster(const std::string& tag,
                               const cluster::Ring& ring) {
  std::vector<Node> nodes;
  for (int i = 0; i < kNodes; ++i) {
    Node node;
    Daemon::Options options;
    options.shards = 2;
    options.workers = 2;
    options.nodeId = "dv" + std::to_string(i);
    options.ring = ring;
    node.daemon = std::make_unique<Daemon>(options);
    node.store = std::make_unique<vfs::MemFileStore>();
    node.fleet = std::make_unique<simulator::ThreadedSimulatorFleet>(
        *node.daemon, *node.store, /*timeScale=*/1.0);
    for (int c = 0; c < kContexts; ++c) {
      const auto cfg = faultConfig(c);
      EXPECT_TRUE(node.daemon
                      ->registerContext(
                          std::make_unique<simmodel::SyntheticDriver>(cfg))
                      .isOk());
      node.fleet->registerContext(cfg);
    }
    node.daemon->setLauncher(node.fleet.get());
    node.socketPath = socketPathFor(tag, i);
    EXPECT_TRUE(node.daemon->listen(node.socketPath).isOk());
    nodes.push_back(std::move(node));
  }
  return nodes;
}

void stopNode(Node& node) {
  node.fleet.reset();  // kill + join before the daemon goes away
  node.daemon->stop();
  node.daemon.reset();
}

void quiesce(std::vector<Node>& nodes) {
  const auto quiet = [&] {
    for (auto& n : nodes) {
      if (!n.daemon) continue;  // killed mid-test
      if (n.fleet->activeJobs() > 0) return false;
      for (const auto& c : n.daemon->shardCounters()) {
        if (c.queued > 0 || c.served < c.enqueued) return false;
      }
    }
    return true;
  };
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!quiet() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(quiet()) << "cluster did not quiesce";
}

void killCluster(std::vector<Node>& nodes) {
  for (auto& n : nodes) {
    if (n.daemon) stopNode(n);
  }
}

/// One sequential client per context: acquires every step of `phase`,
/// retrying at the application level (a connection loss fails acked
/// acquires with a retryable error telling the caller to reopen).
void runPhase(const cluster::Ring& ring, int phase,
              const std::string& skipOwner, std::atomic<int>& failures) {
  auto router = dvlib::NodeRouter::overUnixSockets(ring);
  std::vector<std::thread> threads;
  for (int ctx = 0; ctx < kContexts; ++ctx) {
    if (!skipOwner.empty() && ring.ownerOf(contextName(ctx)).id == skipOwner) {
      continue;
    }
    threads.emplace_back([&, ctx] {
      auto client = dvlib::SimFSClient::connect(router, contextName(ctx));
      if (!client.isOk()) {
        ++failures;
        return;
      }
      (*client)->session()->setRetryPolicy(/*budget=*/6,
                                           /*baseBackoffNs=*/1'000'000);
      const auto cfg = faultConfig(ctx);
      for (const StepIndex step : accessesOf(ctx, phase)) {
        const std::string file = cfg.codec.outputFile(step);
        bool done = false;
        for (int attempt = 0; attempt < 10 && !done; ++attempt) {
          if ((*client)->acquire({file}).isOk() &&
              (*client)->release(file).isOk()) {
            done = true;
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        if (!done) ++failures;
      }
      (*client)->finalize();
    });
  }
  for (auto& t : threads) t.join();
}

TEST(FaultTest, InjectedTransportFaultsAreRecoveredNotSurfaced) {
  // recv delays stretch every frame dispatch; send failures hard-close
  // connections mid-batch (the transport converts an injected send fault
  // into a sticky close, exactly like a peer reset). Seeded: the
  // schedule replays.
  fault::configure("recv:delay:100us;send:fail:0.02", /*seed=*/7);
  const cluster::Ring ring = fullRing("inj");
  auto nodes = startCluster("inj", ring);

  std::atomic<int> failures{0};
  runPhase(ring, /*phase=*/1, /*skipOwner=*/"", failures);
  EXPECT_EQ(failures.load(), 0)
      << "faults must be absorbed by retries, not surfaced";
  quiesce(nodes);
  fault::reset();

  // Recovery changes latency, never the outcome: every accessed step is
  // available on its ring owner (and only there).
  for (int ctx = 0; ctx < kContexts; ++ctx) {
    const int owner = std::stoi(ring.ownerOf(contextName(ctx)).id.substr(2));
    for (const StepIndex step : accessesOf(ctx, 1)) {
      EXPECT_TRUE(nodes[owner].daemon->isAvailable(contextName(ctx), step))
          << "ctx " << ctx << " step " << step;
    }
  }
  killCluster(nodes);
}

TEST(FaultTest, NodeKillBoundsErrorsAndPreservesSurvivorAvailability) {
  // Two identical clusters driven with identical accesses: A stays
  // healthy (the fault-free oracle), B loses a node between phases.
  const cluster::Ring ringA = fullRing("oracle");
  const cluster::Ring ringB = fullRing("victim");
  auto clusterA = startCluster("oracle", ringA);
  auto clusterB = startCluster("victim", ringB);
  const std::string victim = ringB.ownerOf(contextName(0)).id;
  const int victimIdx = victim.back() - '0';

  std::atomic<int> failures{0};
  runPhase(ringA, /*phase=*/1, /*skipOwner=*/"", failures);
  runPhase(ringB, /*phase=*/1, /*skipOwner=*/"", failures);
  ASSERT_EQ(failures.load(), 0);
  quiesce(clusterA);
  quiesce(clusterB);

  stopNode(clusterB[victimIdx]);

  // Phase 2: the dead node's failure domain. A client of a victim-owned
  // context must complete with an error within the retry budget — never
  // hang. (Depending on where the teardown caught it, that is a refused
  // dial at connect or a kUnreachable after the reconnect budget.)
  {
    const auto t0 = std::chrono::steady_clock::now();
    auto router = dvlib::NodeRouter::overUnixSockets(ringB);
    auto dead = dvlib::SimFSClient::connect(router, contextName(0));
    if (dead.isOk()) {
      (*dead)->session()->setRetryPolicy(/*budget=*/2,
                                         /*baseBackoffNs=*/2'000'000);
      const std::string file = faultConfig(0).codec.outputFile(40);
      EXPECT_FALSE((*dead)->acquire({file}).isOk());
      (*dead)->finalize();
    }
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(elapsed, std::chrono::seconds(20))
        << "dead-node ops must complete within the retry budget";
  }

  // Phase 3: surviving failure domains are untouched — the same new
  // accesses succeed on both clusters.
  runPhase(ringA, /*phase=*/3, /*skipOwner=*/victim, failures);
  runPhase(ringB, /*phase=*/3, /*skipOwner=*/victim, failures);
  EXPECT_EQ(failures.load(), 0);
  quiesce(clusterA);
  quiesce(clusterB);

  // Equivalence: for every surviving context, the kill-run cluster holds
  // exactly the availability set of the fault-free run.
  for (int ctx = 0; ctx < kContexts; ++ctx) {
    if (ringB.ownerOf(contextName(ctx)).id == victim) continue;
    const int owner = std::stoi(ringB.ownerOf(contextName(ctx)).id.substr(2));
    const auto steps = faultConfig(ctx).geometry.numOutputSteps();
    for (StepIndex s = 0; s < steps; ++s) {
      EXPECT_EQ(clusterB[owner].daemon->isAvailable(contextName(ctx), s),
                clusterA[owner].daemon->isAvailable(contextName(ctx), s))
          << "ctx " << ctx << " step " << s;
    }
  }
  killCluster(clusterA);
  killCluster(clusterB);
}

TEST(FaultTest, ShmPeerSigkillMidFloodIsContainedLikeSocketLoss) {
  // A same-host client that negotiated the shm data plane and then dies
  // without unwinding (SIGKILL mid-ping-flood) must look exactly like
  // socket loss: the daemon reaps the session and the context keeps
  // serving fresh clients — no wedge, no poisoned shard.
  if (::access("./simfsctl", X_OK) != 0) {
    GTEST_SKIP() << "simfsctl binary not next to the test runner";
  }
  const std::string path = socketPathFor("shmkill", 0);
  Daemon::Options options;
  options.shards = 2;
  options.workers = 2;
  Daemon daemon(options);
  vfs::MemFileStore store;
  simulator::ThreadedSimulatorFleet fleet(daemon, store, /*timeScale=*/1.0);
  const auto cfg = faultConfig(0);
  ASSERT_TRUE(
      daemon.registerContext(std::make_unique<simmodel::SyntheticDriver>(cfg))
          .isOk());
  fleet.registerContext(cfg);
  daemon.setLauncher(&fleet);
  ASSERT_TRUE(daemon.listen(path).isOk());

  // Per-transport connection counters travel in the kShardStatsAck
  // header; an in-proc probe reads them without disturbing the socket
  // side under test.
  const auto statsText = [&]() -> std::string {
    auto conn = daemon.connectInProc();
    std::mutex mu;
    std::condition_variable cv;
    std::string text;
    bool got = false;
    conn->setHandler([&](msg::Message&& m) {
      std::lock_guard lock(mu);
      text = m.text;
      got = true;
      cv.notify_all();
    });
    msg::Message req;
    req.type = msg::MsgType::kShardStatsReq;
    req.requestId = 1;
    EXPECT_TRUE(conn->send(req).isOk());
    std::unique_lock lock(mu);
    EXPECT_TRUE(
        cv.wait_for(lock, std::chrono::seconds(5), [&] { return got; }));
    return text;
  };

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Flood the daemon with pings over a negotiated shm connection until
    // killed; the count is effectively "forever".
    ::execl("./simfsctl", "simfsctl", "ping", path.c_str(), "2000000000",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }

  // Wait until the child's hello settled on shm and the flood is live.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool sawShm = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (statsText().find("conn_shm=1") != std::string::npos) {
      sawShm = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(sawShm) << "child never negotiated the shm data plane";
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Containment: a fresh socket client completes a full acquire/release
  // on the same context within the retry budget.
  {
    auto conn = msg::unixSocketConnect(path);
    ASSERT_TRUE(conn.isOk());
    auto session =
        dvlib::Session::connect(std::move(*conn), contextName(0));
    ASSERT_TRUE(session.isOk());
    const std::string file = cfg.codec.outputFile(3);
    bool done = false;
    for (int attempt = 0; attempt < 10 && !done; ++attempt) {
      if ((*session)->acquire({file}).isOk() &&
          (*session)->release(file).isOk()) {
        done = true;
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    EXPECT_TRUE(done) << "daemon wedged after shm peer SIGKILL";
    (*session)->finalize();
  }
  // The verification client negotiated shm too: the cumulative counter
  // kept counting past the crash instead of wedging at 1.
  EXPECT_NE(statsText().find("conn_shm=2"), std::string::npos)
      << "stats: " << statsText();
}

TEST(FaultTest, ReceiverSigkillMidHandoffAbortsAndOldOwnerResumes) {
  // The elastic-membership crash case: a handoff RECEIVER dies (kill -9,
  // no unwind) while the old owner is still streaming context state to
  // it. The epoch fence resolves this deterministically — the transfer
  // was never committed, so the old owner aborts it, keeps authority,
  // and every client op (including acquires that were waiting while the
  // stream ran) completes as if the join was never attempted.
  if (::access("./simfs_daemon", X_OK) != 0) {
    GTEST_SKIP() << "simfs_daemon binary not next to the test runner";
  }
  // One step per frame and 20ms of injected delay ahead of each send
  // guarantees the stream is mid-flight when the receiver dies; a 300ms
  // ack deadline makes the abort prompt. Knobs are read at daemon
  // construction, so set them first.
  ::setenv("SIMFS_HANDOFF_TIMEOUT_MS", "300", 1);
  ::setenv("SIMFS_HANDOFF_BATCH", "1", 1);
  fault::configure("handoff:delay:20ms", /*seed=*/11);

  const std::string ownerSock = socketPathFor("hk", 0);
  const std::string joinerSock = socketPathFor("hk", 1);
  Node owner;
  {
    Daemon::Options options;
    options.shards = 2;
    options.workers = 2;
    options.nodeId = "dv0";
    options.ring = cluster::Ring::make({{"dv0", ownerSock}}, 1).value();
    owner.daemon = std::make_unique<Daemon>(options);
    owner.store = std::make_unique<vfs::MemFileStore>();
    owner.fleet = std::make_unique<simulator::ThreadedSimulatorFleet>(
        *owner.daemon, *owner.store, /*timeScale=*/1.0);
    for (int c = 0; c < kContexts; ++c) {
      const auto cfg = faultConfig(c);
      ASSERT_TRUE(owner.daemon
                      ->registerContext(
                          std::make_unique<simmodel::SyntheticDriver>(cfg))
                      .isOk());
      owner.fleet->registerContext(cfg);
    }
    owner.daemon->setLauncher(owner.fleet.get());
    owner.socketPath = ownerSock;
    ASSERT_TRUE(owner.daemon->listen(ownerSock).isOk());
  }
  ::unsetenv("SIMFS_HANDOFF_TIMEOUT_MS");
  ::unsetenv("SIMFS_HANDOFF_BATCH");

  // The receiving node is a REAL process so kill -9 is a real crash.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    const std::string ringSpec = "dv1=" + joinerSock;
    ::execl("./simfs_daemon", "simfs_daemon", "--socket", joinerSock.c_str(),
            "--node", "dv1", "--ring", ringSpec.c_str(), "--contexts", "6",
            "--steps", "48", static_cast<char*>(nullptr));
    ::_exit(127);
  }
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    bool up = false;
    while (!up && std::chrono::steady_clock::now() < deadline) {
      auto probe = msg::unixSocketConnect(joinerSock);
      if (probe.isOk()) {
        (*probe)->close();
        up = true;
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    ASSERT_TRUE(up) << "joiner daemon never came up";
  }

  const auto ringV1 = owner.daemon->ring();
  const auto ring2 = ringV1.withNode({"dv1", joinerSock}, 2).value();
  int moving = -1;
  for (int c = 0; c < kContexts && moving < 0; ++c) {
    if (ring2.ownerOf(contextName(c)).id == "dv1") moving = c;
  }
  ASSERT_GE(moving, 0) << "the joiner must attract at least one context";
  const auto cfg = faultConfig(moving);

  // Warm the moving context: ~20 resident steps means >= 20 one-step
  // frames, each behind a 20ms injected delay — several hundred ms of
  // stream to crash into.
  {
    auto router = dvlib::NodeRouter::overUnixSockets(ringV1);
    auto client = dvlib::SimFSClient::connect(router, contextName(moving));
    ASSERT_TRUE(client.isOk());
    for (int k = 0; k < 20; ++k) {
      const std::string file =
          cfg.codec.outputFile(static_cast<StepIndex>((k * 2) % kStepSpan));
      ASSERT_TRUE((*client)->acquire({file}).isOk());
      ASSERT_TRUE((*client)->release(file).isOk());
    }
    (*client)->finalize();
  }

  // A client that keeps acquiring cold steps while the handoff streams:
  // these are the waiters that must not be lost.
  std::atomic<bool> waiterOk{true};
  std::thread waiter([&] {
    auto router = dvlib::NodeRouter::overUnixSockets(ringV1);
    auto client = dvlib::SimFSClient::connect(router, contextName(moving));
    if (!client.isOk()) {
      waiterOk = false;
      return;
    }
    for (int k = 0; k < 6; ++k) {
      const std::string file =
          cfg.codec.outputFile(static_cast<StepIndex>((k * 5 + 1) % kStepSpan));
      if (!(*client)->acquire({file}).isOk() ||
          !(*client)->release(file).isOk()) {
        waiterOk = false;
        return;
      }
    }
    (*client)->finalize();
  });

  // Propose the join; the owner starts streaming its moving contexts.
  {
    auto conn = owner.daemon->connectInProc();
    std::mutex mu;
    std::condition_variable cv;
    std::optional<msg::Message> ack;
    conn->setHandler([&](msg::Message&& m) {
      std::lock_guard lock(mu);
      ack = std::move(m);
      cv.notify_all();
    });
    msg::Message propose;
    propose.type = msg::MsgType::kRingPropose;
    propose.requestId = 1;
    propose.files = ring2.encodeEntries();
    propose.intArg = static_cast<std::int64_t>(ring2.version());
    ASSERT_TRUE(conn->send(propose).isOk());
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return ack.has_value(); }));
    ASSERT_EQ(ack->code, 0) << ack->text;
    ASSERT_GT(ack->intArg2, 0);
  }
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (owner.daemon->federationCounters().handoffsInflight == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GT(owner.daemon->federationCounters().handoffsInflight, 0u)
        << "handoff never started streaming";
  }

  // Crash the receiver mid-stream.
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  // The uncommitted transfer aborts within the ack deadline; authority
  // never moved (the ring is still at the pre-propose version).
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    auto fed = owner.daemon->federationCounters();
    while ((fed.handoffsInflight != 0 || fed.handoffsAborted == 0) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      fed = owner.daemon->federationCounters();
    }
    EXPECT_EQ(fed.handoffsInflight, 0u);
    EXPECT_GE(fed.handoffsAborted, 1u) << "crashed handoff must abort";
    EXPECT_EQ(fed.handoffsCommitted, 0u)
        << "nothing may commit without a kRingCommit";
  }
  EXPECT_EQ(owner.daemon->ring().version(), ringV1.version());

  waiter.join();
  EXPECT_TRUE(waiterOk.load()) << "a waiter was lost across the aborted join";

  // Old owner resumes: a fresh client completes a cold acquire on the
  // very context that was mid-handoff.
  {
    auto router = dvlib::NodeRouter::overUnixSockets(ringV1);
    auto client = dvlib::SimFSClient::connect(router, contextName(moving));
    ASSERT_TRUE(client.isOk());
    const std::string file = cfg.codec.outputFile(47);
    EXPECT_TRUE((*client)->acquire({file}).isOk());
    EXPECT_TRUE((*client)->release(file).isOk());
    (*client)->finalize();
  }
  fault::reset();
  stopNode(owner);
}

}  // namespace
}  // namespace simfs::dv
