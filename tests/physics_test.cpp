// Tests for the Sedov-like blast-wave solver: determinism, restart
// round-trips (the bitwise-reproducibility requirement of Sec. II) and
// physical invariants.
#include "physics/sedov.hpp"

#include "analysis/field_stats.hpp"
#include "dvlib/iolib.hpp"

#include <gtest/gtest.h>

namespace simfs::physics {
namespace {

SedovConfig smallConfig() {
  SedovConfig cfg;
  cfg.n = 12;
  return cfg;
}

TEST(SedovTest, EnergyIsConserved) {
  SedovSolver solver(smallConfig());
  const double initial = solver.totalEnergy();
  solver.run(50);
  EXPECT_NEAR(solver.totalEnergy(), initial, 1e-9 * initial);
}

TEST(SedovTest, BlastFrontExpands) {
  SedovSolver solver(smallConfig());
  const double r0 = solver.frontRadius();
  solver.run(10);
  const double r10 = solver.frontRadius();
  solver.run(20);
  const double r30 = solver.frontRadius();
  EXPECT_LT(r0, r10);
  EXPECT_LT(r10, r30);
}

TEST(SedovTest, DeterministicAcrossRuns) {
  SedovSolver a(smallConfig());
  SedovSolver b(smallConfig());
  a.run(25);
  b.run(25);
  EXPECT_EQ(a.writeOutputStep(), b.writeOutputStep());  // bitwise
}

TEST(SedovTest, RestartRoundTripIsBitwiseIdentical) {
  // Uninterrupted run vs write-restart-then-resume must agree bitwise —
  // this is the property SIMFS_Bitrep relies on.
  SedovSolver full(smallConfig());
  full.run(40);

  SedovSolver half(smallConfig());
  half.run(20);
  const auto restart = half.writeRestart();
  auto resumed = SedovSolver::fromRestart(restart);
  ASSERT_TRUE(resumed.isOk());
  EXPECT_EQ(resumed->timestep(), 20);
  resumed->run(20);

  EXPECT_EQ(resumed->timestep(), full.timestep());
  EXPECT_EQ(resumed->writeOutputStep(), full.writeOutputStep());
  EXPECT_EQ(resumed->writeRestart(), full.writeRestart());
}

TEST(SedovTest, RestartRejectsCorruptBlobs) {
  EXPECT_FALSE(SedovSolver::fromRestart("junk").isOk());
  SedovSolver solver(smallConfig());
  auto blob = solver.writeRestart();
  blob.pop_back();
  EXPECT_FALSE(SedovSolver::fromRestart(blob).isOk());
  blob = solver.writeRestart();
  blob[10] = char(0xFF);  // corrupt the grid size
  EXPECT_FALSE(SedovSolver::fromRestart(blob).isOk());
}

TEST(SedovTest, OutputStepParsesAsField) {
  SedovSolver solver(smallConfig());
  solver.run(5);
  const auto field = dvlib::decodeField(solver.writeOutputStep());
  ASSERT_TRUE(field.isOk());
  EXPECT_EQ(field->size(), 12u * 12u * 12u);
}

TEST(SedovTest, AnalysisSeesEvolvingVariance) {
  // The paper's analysis computes mean/variance of the field; variance
  // decays as the blast spreads out.
  SedovSolver solver(smallConfig());
  const auto early = analysis::analyzeField(solver.writeOutputStep());
  solver.run(40);
  const auto late = analysis::analyzeField(solver.writeOutputStep());
  ASSERT_TRUE(early.isOk());
  ASSERT_TRUE(late.isOk());
  EXPECT_GT(early->variance, late->variance);
  // Mean density stays near ambient + deposited energy spread.
  EXPECT_NEAR(early->mean, late->mean, 1e-9);
}

TEST(SedovTest, ConfigValidation) {
  SedovConfig bad = smallConfig();
  bad.n = 2;
  EXPECT_DEATH(SedovSolver{bad}, "");
}

TEST(FieldStatsTest, KnownValues) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const auto stats = analysis::analyzeField(dvlib::encodeField(v));
  ASSERT_TRUE(stats.isOk());
  EXPECT_DOUBLE_EQ(stats->mean, 2.5);
  EXPECT_DOUBLE_EQ(stats->variance, 1.25);
  EXPECT_DOUBLE_EQ(stats->min, 1.0);
  EXPECT_DOUBLE_EQ(stats->max, 4.0);
  EXPECT_EQ(stats->count, 4u);
}

TEST(FieldStatsTest, EmptyField) {
  const auto stats = analysis::analyzeField(dvlib::encodeField({}));
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(stats->count, 0u);
}

TEST(FieldStatsTest, RejectsNonField) {
  EXPECT_FALSE(analysis::analyzeField("garbage").isOk());
}

}  // namespace
}  // namespace simfs::physics
