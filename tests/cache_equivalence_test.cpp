// Behavioural-equivalence tests for the integer-keyed cache refactor.
//
// Before the refactor, the string-keyed seed implementation was driven
// through a deterministic 4000-operation trace (accesses, plain inserts,
// pin/unpin churn, erases) and the full outcome sequence — hit flags,
// evicted keys in order, and final statistics — was folded into an
// FNV-1a digest per policy. The digests below are those recordings; the
// integer-keyed policies must reproduce them bit for bit, proving the
// re-keying changed representation, not behaviour.
//
// Also covers pin/unpin under eviction pressure, the case where the
// intrusive victim scans interact with the pin refcounts.
#include "cache/cache.hpp"
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <deque>

namespace simfs::cache {
namespace {

using simmodel::PolicyKind;

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

/// Replays the recorded trace (same op mix and Rng stream as the seed
/// recording) and digests every observable outcome.
std::uint64_t traceDigest(PolicyKind kind) {
  const auto c = makeCache(kind, 16, /*seed=*/42);
  Rng rng(123);
  std::uint64_t h = 1469598103934665603ull;
  std::deque<StepIndex> pinned;
  for (int op = 0; op < 4000; ++op) {
    const int what = static_cast<int>(rng.uniformInt(0, 99));
    const auto key = static_cast<StepIndex>(rng.uniformInt(0, 63));
    const double cost = static_cast<double>(rng.uniformInt(1, 16));
    if (what < 70) {
      const auto out = c->access(key, cost);
      h = fnv(h, out.hit ? 1 : 2);
      for (const StepIndex e : out.evicted) {
        h = fnv(h, 100 + static_cast<std::uint64_t>(e));
      }
    } else if (what < 80) {
      const auto ev = c->insert(key, cost);
      h = fnv(h, 3);
      for (const StepIndex e : ev) {
        h = fnv(h, 100 + static_cast<std::uint64_t>(e));
      }
    } else if (what < 90) {
      if (c->contains(key)) {
        c->pin(key);
        pinned.push_back(key);
        h = fnv(h, 4);
      }
    } else if (what < 95) {
      for (int n = 0; n < 3 && !pinned.empty(); ++n) {
        c->unpin(pinned.front());
        pinned.pop_front();
      }
      h = fnv(h, 5);
    } else {
      h = fnv(h, c->erase(key) ? 6 : 7);
    }
  }
  const auto& st = c->stats();
  h = fnv(h, st.hits);
  h = fnv(h, st.misses);
  h = fnv(h, st.insertions);
  h = fnv(h, st.evictions);
  h = fnv(h, st.pinSkips);
  h = fnv(h, static_cast<std::uint64_t>(st.evictedCostTotal * 16.0));
  return h;
}

struct Recorded {
  PolicyKind kind;
  std::uint64_t digest;
};

// Recorded from the pre-refactor string-keyed implementation (seed commit,
// keys "f<i>" mapped 1:1 to StepIndex i).
constexpr Recorded kSeedDigests[] = {
    {PolicyKind::kLru, 0x12e347b6a7a4407cull},
    {PolicyKind::kLirs, 0x51abfd1ef28d67abull},
    {PolicyKind::kArc, 0x07670ce670e270a0ull},
    {PolicyKind::kBcl, 0xd7496b3c616aa369ull},
    {PolicyKind::kDcl, 0x010037a1579c3016ull},
    {PolicyKind::kFifo, 0x4e7270358a853aeeull},
    {PolicyKind::kRandom, 0xa2d62162d1ef29e0ull},
};

class EquivalenceTest : public ::testing::TestWithParam<Recorded> {};

TEST_P(EquivalenceTest, MatchesStringKeyedSeedBehaviour) {
  EXPECT_EQ(traceDigest(GetParam().kind), GetParam().digest)
      << simmodel::policyKindName(GetParam().kind)
      << " diverged from the recorded seed behaviour";
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EquivalenceTest,
                         ::testing::ValuesIn(kSeedDigests),
                         [](const auto& info) {
                           return simmodel::policyKindName(info.param.kind);
                         });

// ------------------------------------------------ pin/unpin under pressure

constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::kLru, PolicyKind::kLirs, PolicyKind::kArc, PolicyKind::kBcl,
    PolicyKind::kDcl, PolicyKind::kFifo, PolicyKind::kRandom};

class PinPressureTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PinPressureTest, FullyPinnedCacheOverflowsThenDrains) {
  const auto c = makeCache(GetParam(), 8);
  for (StepIndex s = 0; s < 8; ++s) {
    c->access(s, 1.0);
    c->pin(s);
  }
  // Everything pinned: the next 4 accesses must overflow, not evict
  // (each new entry is pinned immediately so it survives the next access).
  for (StepIndex s = 100; s < 104; ++s) {
    const auto out = c->access(s, 1.0);
    EXPECT_TRUE(out.evicted.empty());
    c->pin(s);
  }
  EXPECT_EQ(c->size(), 12);
  EXPECT_GT(c->stats().pinSkips, 0u);
  // Unpin the original working set: eviction pressure drains the cache
  // back to capacity on the next access, never touching the still-pinned
  // late arrivals.
  for (StepIndex s = 0; s < 8; ++s) c->unpin(s);
  const auto out = c->access(200, 1.0);
  EXPECT_EQ(c->size(), 8);
  EXPECT_EQ(out.evicted.size(), 5u);
  for (StepIndex s = 100; s < 104; ++s) EXPECT_TRUE(c->contains(s));
}

TEST_P(PinPressureTest, InterleavedPinUnpinNeverEvictsPinned) {
  const auto c = makeCache(GetParam(), 12);
  Rng rng(7);
  std::deque<StepIndex> pinned;
  for (int i = 0; i < 5000; ++i) {
    const auto key = static_cast<StepIndex>(rng.uniformInt(0, 47));
    c->access(key, static_cast<double>(rng.uniformInt(1, 8)));
    if (rng.uniformInt(0, 3) == 0 && c->contains(key) &&
        c->pinCount(key) == 0) {
      c->pin(key);
      pinned.push_back(key);
    }
    while (pinned.size() > 6) {
      c->unpin(pinned.front());
      pinned.pop_front();
    }
    for (const StepIndex p : pinned) {
      ASSERT_TRUE(c->contains(p))
          << c->name() << " evicted pinned step " << p << " at op " << i;
    }
  }
  // Every pinned entry must still carry its refcount.
  for (const StepIndex p : pinned) EXPECT_EQ(c->pinCount(p), 1);
}

TEST_P(PinPressureTest, EraseOfPinnedEntryIsHonoured) {
  // erase() models an operator deleting the file out from under the DV —
  // it must work even on pinned entries and fully forget the pin state.
  const auto c = makeCache(GetParam(), 4);
  c->access(3, 1.0);
  c->pin(3);
  EXPECT_TRUE(c->erase(3));
  EXPECT_FALSE(c->contains(3));
  EXPECT_EQ(c->pinCount(3), 0);
  // Re-inserting the same key starts from a clean, unpinned state.
  c->access(3, 1.0);
  EXPECT_EQ(c->pinCount(3), 0);
  c->access(10, 1.0);
  c->access(11, 1.0);
  c->access(12, 1.0);
  const auto out = c->access(13, 1.0);
  EXPECT_EQ(out.evicted.size(), 1u);  // key 3 is evictable again
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PinPressureTest,
                         ::testing::ValuesIn(kAllPolicies),
                         [](const auto& info) {
                           return simmodel::policyKindName(info.param);
                         });

// -------------------------------------------- string adapter round-trips

TEST(FilenameKeyedCacheTest, TranslatesThroughCodec) {
  const auto c = makeCache(PolicyKind::kLru, 4);
  const simmodel::FilenameCodec codec;
  FilenameKeyedCache view(*c, codec);
  (void)c->insert(7, 2.0);
  EXPECT_TRUE(view.contains(codec.outputFile(7)));
  EXPECT_FALSE(view.contains("garbage.bin"));
  view.pin(codec.outputFile(7));
  EXPECT_EQ(c->pinCount(7), 1);
  view.unpin(codec.outputFile(7));
  EXPECT_TRUE(view.access(codec.outputFile(7), 2.0).hit);
  int seen = 0;
  view.forEachResidentFile([&](const std::string& name, double, int) {
    EXPECT_EQ(name, codec.outputFile(7));
    ++seen;
  });
  EXPECT_EQ(seen, 1);
  EXPECT_TRUE(view.erase(codec.outputFile(7)));
  EXPECT_FALSE(c->contains(7));
}

// ---------------------------------------------- flat index map edge cases

TEST(StepSlotMapTest, InsertEraseChurnKeepsChainsIntact) {
  StepSlotMap map;
  Rng rng(42);
  std::unordered_map<StepIndex, std::int32_t> model;
  for (int i = 0; i < 20000; ++i) {
    const auto key = static_cast<StepIndex>(rng.uniformInt(0, 511));
    if (rng.uniformInt(0, 1) == 0) {
      if (model.count(key) == 0) {
        const auto v = static_cast<std::int32_t>(i);
        map.insert(key, v);
        model[key] = v;
      }
    } else {
      EXPECT_EQ(map.erase(key), model.erase(key) > 0);
    }
    ASSERT_EQ(map.size(), model.size());
  }
  for (const auto& [k, v] : model) ASSERT_EQ(map.find(k), v);
}

}  // namespace
}  // namespace simfs::cache
