// Unit tests for the cluster layer: consistent-hash ring construction,
// placement determinism, distribution, membership-change stability, and
// the wire/spec encodings.
#include "cluster/ring.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

namespace simfs::cluster {
namespace {

std::vector<NodeInfo> threeNodes() {
  return {{"dv0", "/tmp/dv0.sock"},
          {"dv1", "/tmp/dv1.sock"},
          {"dv2", "/tmp/dv2.sock"}};
}

TEST(RingTest, RejectsBadMembership) {
  EXPECT_FALSE(Ring::make({}).isOk());
  EXPECT_FALSE(Ring::make({{"", "/a"}}).isOk());
  EXPECT_FALSE(Ring::make({{"a", ""}}).isOk());
  EXPECT_FALSE(Ring::make({{"a=b", "/a"}}).isOk());
  EXPECT_FALSE(Ring::make({{"a,b", "/a"}}).isOk());
  EXPECT_FALSE(Ring::make({{"a", "/a"}, {"a", "/b"}}).isOk());
  EXPECT_FALSE(Ring::make(threeNodes(), 1, 0).isOk());
}

TEST(RingTest, ParseAndEncodeRoundTrip) {
  auto ring = Ring::parse("dv0=/tmp/dv0.sock,dv1=/tmp/dv1.sock", 7);
  ASSERT_TRUE(ring.isOk());
  EXPECT_EQ(ring->size(), 2u);
  EXPECT_EQ(ring->version(), 7u);
  const auto entries = ring->encodeEntries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], "dv0=/tmp/dv0.sock");
  auto again = Ring::fromEntries(entries, 8);
  ASSERT_TRUE(again.isOk());
  EXPECT_TRUE(ring->sameMembership(*again));
  EXPECT_EQ(again->version(), 8u);
}

TEST(RingTest, ParseRejectsMalformedEntries) {
  EXPECT_FALSE(Ring::parse("").isOk());
  EXPECT_FALSE(Ring::parse("noequals").isOk());
  EXPECT_FALSE(Ring::parse("=endpoint").isOk());
  EXPECT_FALSE(Ring::parse("id=").isOk());
}

TEST(RingTest, FromEntriesRejectsSmuggledSeparators) {
  // A forged wire entry must not mint extra members.
  EXPECT_FALSE(Ring::fromEntries({"dv0=/s0", "x=/a,y=/b"}, 1).isOk());
  EXPECT_FALSE(Ring::fromEntries({"noequals"}, 1).isOk());
  EXPECT_FALSE(Ring::fromEntries({}, 1).isOk());
}

TEST(RingTest, PlacementIsDeterministicAcrossInstances) {
  auto a = Ring::make(threeNodes()).value();
  auto b = Ring::make(threeNodes()).value();
  for (int i = 0; i < 200; ++i) {
    const std::string ctx = "context-" + std::to_string(i);
    EXPECT_EQ(a.ownerOf(ctx).id, b.ownerOf(ctx).id) << ctx;
  }
}

TEST(RingTest, SingleNodeOwnsEverything) {
  auto ring = Ring::make({{"solo", "/tmp/solo.sock"}}).value();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ring.ownerOf("ctx" + std::to_string(i)).id, "solo");
  }
}

TEST(RingTest, VirtualNodesSpreadContexts) {
  auto ring = Ring::make(threeNodes()).value();
  std::map<std::string, int> owned;
  constexpr int kContexts = 300;
  for (int i = 0; i < kContexts; ++i) {
    owned[ring.ownerOf("ctx" + std::to_string(i)).id]++;
  }
  ASSERT_EQ(owned.size(), 3u) << "some node owns nothing";
  for (const auto& [id, n] : owned) {
    // With 64 virtual nodes the shares are ~100 +- a few dozen; anything
    // owning < 1/10th of the fair share means the hash is clustering.
    EXPECT_GT(n, kContexts / 30) << id;
  }
}

TEST(RingTest, RemovingANodeOnlyMovesItsContexts) {
  auto full = Ring::make(threeNodes()).value();
  auto reduced =
      Ring::make({{"dv0", "/tmp/dv0.sock"}, {"dv1", "/tmp/dv1.sock"}}).value();
  int moved = 0;
  int kept = 0;
  for (int i = 0; i < 300; ++i) {
    const std::string ctx = "ctx" + std::to_string(i);
    const std::string before = full.ownerOf(ctx).id;
    const std::string after = reduced.ownerOf(ctx).id;
    if (before == "dv2") {
      ++moved;  // must move somewhere
      EXPECT_NE(after, "dv2");
    } else {
      ++kept;
      // The consistent-hashing contract: surviving nodes keep theirs.
      EXPECT_EQ(after, before) << ctx;
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_GT(kept, 0);
}

TEST(RingTest, ReplicasOfAreDeterministicDistinctSuccessors) {
  auto a = Ring::make(threeNodes()).value();
  auto b = Ring::make(threeNodes()).value();
  for (int i = 0; i < 100; ++i) {
    const std::string ctx = "context-" + std::to_string(i);
    const auto ra = a.replicasOf(ctx, 2);
    const auto rb = b.replicasOf(ctx, 2);
    // Same set on every instance — owner and replicas agree on who
    // holds a lease without ever talking about it.
    ASSERT_EQ(ra.size(), rb.size()) << ctx;
    for (std::size_t j = 0; j < ra.size(); ++j) {
      EXPECT_EQ(ra[j].id, rb[j].id) << ctx;
    }
    // The replica set never contains the owner, never repeats a node.
    ASSERT_EQ(ra.size(), 2u) << ctx;
    std::set<std::string> seen{a.ownerOf(ctx).id};
    for (const auto& n : ra) {
      EXPECT_TRUE(seen.insert(n.id).second) << ctx << " duplicates " << n.id;
    }
  }
}

TEST(RingTest, ReplicasOfClampsToRingSize) {
  auto ring = Ring::make(threeNodes()).value();
  // Asking for more replicas than there are other nodes yields them all,
  // once each — never a wrap-around duplicate.
  const auto all = ring.replicasOf("ctx", 16);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_NE(all[0].id, all[1].id);
  EXPECT_NE(all[0].id, ring.ownerOf("ctx").id);
  EXPECT_NE(all[1].id, ring.ownerOf("ctx").id);
  // R = 0 and single-node rings disable the replica plane entirely.
  EXPECT_TRUE(ring.replicasOf("ctx", 0).empty());
  auto solo = Ring::make({{"solo", "/tmp/solo.sock"}}).value();
  EXPECT_TRUE(solo.replicasOf("ctx", 2).empty());
}

TEST(RingTest, FindLooksUpMembers) {
  auto ring = Ring::make(threeNodes()).value();
  ASSERT_NE(ring.find("dv1"), nullptr);
  EXPECT_EQ(ring.find("dv1")->endpoint, "/tmp/dv1.sock");
  EXPECT_EQ(ring.find("nope"), nullptr);
}

TEST(RingTest, EmptyRingIsInert) {
  Ring ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.encodeEntries().empty());
}

// --- elastic membership ops -------------------------------------------------

TEST(RingTest, WithNodeAddsAMemberAtTheNewVersion) {
  auto ring = Ring::make(threeNodes(), 3).value();
  auto grown = ring.withNode({"dv3", "/tmp/dv3.sock"}, 4);
  ASSERT_TRUE(grown.isOk());
  EXPECT_EQ(grown->size(), 4u);
  EXPECT_EQ(grown->version(), 4u);
  ASSERT_NE(grown->find("dv3"), nullptr);
  EXPECT_EQ(grown->find("dv3")->endpoint, "/tmp/dv3.sock");
  // The source ring is untouched (immutability is the fencing story:
  // every version is a distinct table).
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.version(), 3u);
  // Duplicate id / invalid member fail Ring::make's validation.
  EXPECT_FALSE(ring.withNode({"dv1", "/elsewhere"}, 4).isOk());
  EXPECT_FALSE(ring.withNode({"", "/x"}, 4).isOk());
}

TEST(RingTest, WithoutNodeRemovesAMemberButNeverTheLast) {
  auto ring = Ring::make(threeNodes(), 3).value();
  auto shrunk = ring.withoutNode("dv2", 4);
  ASSERT_TRUE(shrunk.isOk());
  EXPECT_EQ(shrunk->size(), 2u);
  EXPECT_EQ(shrunk->version(), 4u);
  EXPECT_EQ(shrunk->find("dv2"), nullptr);
  EXPECT_FALSE(ring.withoutNode("nope", 4).isOk());
  auto solo = Ring::make({{"solo", "/tmp/solo.sock"}}).value();
  EXPECT_FALSE(solo.withoutNode("solo", 2).isOk());
}

TEST(RingTest, MovedContextsIsExactlyTheOwnershipDelta) {
  auto from = Ring::make(threeNodes(), 1).value();
  auto to = from.withNode({"dv3", "/tmp/dv3.sock"}, 2).value();
  std::vector<std::string> contexts;
  for (int i = 0; i < 200; ++i) contexts.push_back("ctx" + std::to_string(i));
  const auto moved = Ring::movedContexts(from, to, contexts);
  EXPECT_FALSE(moved.empty()) << "a 4th node must attract some contexts";
  std::set<std::string> movedSet(moved.begin(), moved.end());
  for (const auto& ctx : contexts) {
    const bool differs = from.ownerOf(ctx).id != to.ownerOf(ctx).id;
    EXPECT_EQ(movedSet.count(ctx) != 0, differs) << ctx;
    // Consistent hashing: whatever moved, moved TO the joiner.
    if (differs) EXPECT_EQ(to.ownerOf(ctx).id, "dv3") << ctx;
  }
  // Identical membership at a bumped version moves nothing, by
  // construction — the pinned contract behind the client-side
  // fast-forward (adoptRing returns "no change" on a pure bump).
  const auto bumped = Ring::fromEntries(from.encodeEntries(), 9).value();
  EXPECT_TRUE(from.sameMembership(bumped));
  EXPECT_TRUE(Ring::movedContexts(from, bumped, contexts).empty());
  // Empty rings place nothing, so nothing can move.
  EXPECT_TRUE(Ring::movedContexts(Ring(), to, contexts).empty());
  EXPECT_TRUE(Ring::movedContexts(from, Ring(), contexts).empty());
}

}  // namespace
}  // namespace simfs::cluster
