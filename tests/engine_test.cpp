// Unit tests for the discrete-event engine.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace simfs::engine {
namespace {

TEST(EngineTest, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.scheduleAt(30, [&] { order.push_back(3); });
  e.scheduleAt(10, [&] { order.push_back(1); });
  e.scheduleAt(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(EngineTest, FifoAmongEqualTimes) {
  Engine e;
  std::vector<int> order;
  e.scheduleAt(5, [&] { order.push_back(1); });
  e.scheduleAt(5, [&] { order.push_back(2); });
  e.scheduleAt(5, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineTest, ScheduleAfterUsesCurrentTime) {
  Engine e;
  VTime seen = -1;
  e.scheduleAt(100, [&] {
    e.scheduleAfter(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150);
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  const auto id = e.scheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(e.cancel(id));  // already cancelled
}

TEST(EngineTest, CancelFromWithinEvent) {
  Engine e;
  bool ran = false;
  const auto id = e.scheduleAt(20, [&] { ran = true; });
  e.scheduleAt(10, [&] { EXPECT_TRUE(e.cancel(id)); });
  e.run();
  EXPECT_FALSE(ran);
}

TEST(EngineTest, RunUntilHorizonStopsAndAdvancesClock) {
  Engine e;
  int count = 0;
  e.scheduleAt(10, [&] { ++count; });
  e.scheduleAt(100, [&] { ++count; });
  const auto executed = e.run(50);
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(e.now(), 50);
  EXPECT_EQ(e.pendingCount(), 1u);
  e.run();
  EXPECT_EQ(count, 2);
}

TEST(EngineTest, EventsScheduledDuringRunExecute) {
  Engine e;
  std::vector<int> order;
  e.scheduleAt(10, [&] {
    order.push_back(1);
    e.scheduleAt(15, [&] { order.push_back(2); });
  });
  e.scheduleAt(20, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineTest, LateSchedulingClampsToNow) {
  Engine e;
  VTime seen = -1;
  e.scheduleAt(100, [&] {
    e.scheduleAt(50, [&] { seen = e.now(); });  // in the past
  });
  e.run();
  EXPECT_EQ(seen, 100);
}

TEST(EngineTest, NextEventTime) {
  Engine e;
  EXPECT_EQ(e.nextEventTime(), kTimeInf);
  e.scheduleAt(42, [] {});
  EXPECT_EQ(e.nextEventTime(), 42);
}

TEST(EngineTest, StepExecutesExactlyOne) {
  Engine e;
  int count = 0;
  e.scheduleAt(1, [&] { ++count; });
  e.scheduleAt(2, [&] { ++count; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(e.step());
}

TEST(EngineTest, ExecutedCountAccumulates) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.scheduleAt(i, [] {});
  e.run();
  EXPECT_EQ(e.executedCount(), 5u);
}

TEST(EngineTest, ManyEventsStressOrdering) {
  Engine e;
  VTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    e.scheduleAt((i * 7919) % 1000, [&, i] {
      if (e.now() < last) monotone = false;
      last = e.now();
    });
  }
  e.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(e.executedCount(), 10000u);
}

}  // namespace
}  // namespace simfs::engine
