// Concurrent-serving stress test: N socket clients x M contexts hammer
// open/close against the sharded daemon while a threaded fleet produces
// files. The per-context end state (which steps are resident) must match
// a single-threaded DataVirtualizer replay of the same accesses: demand
// jobs always cover whole restart intervals, so the union of produced
// intervals is interleaving-independent — any divergence means the
// sharded pipeline lost, duplicated, or cross-wired a request.
//
// This test is a primary target of the ThreadSanitizer CI job.
#include "dv/daemon.hpp"
#include "dv/data_virtualizer.hpp"
#include "dvlib/simfs_client.hpp"
#include "msg/transport.hpp"
#include "simulator/threaded_fleet.hpp"
#include "vfs/file_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

namespace simfs::dv {
namespace {

using simmodel::ContextConfig;
using simmodel::PerfModel;
using simmodel::StepGeometry;

constexpr int kContexts = 4;
constexpr int kClients = 8;
constexpr int kAccessesPerClient = 12;
constexpr StepIndex kStepSpan = 48;  // accessed region of the timeline

std::string contextName(int i) { return "ctx" + std::to_string(i); }

ContextConfig stressConfig(int i) {
  ContextConfig cfg;
  cfg.name = contextName(i);
  cfg.geometry = StepGeometry(1, 4, 64);
  cfg.outputStepBytes = 64;
  cfg.cacheQuotaBytes = 0;  // unlimited: the end state is the produced union
  cfg.sMax = 8;
  cfg.prefetchEnabled = false;  // demand-only: no timing-dependent kills
  cfg.perf = PerfModel(2, 1 * vtime::kMillisecond, 2 * vtime::kMillisecond);
  return cfg;
}

/// The deterministic access list of client `c` (steps are distinct per
/// client; ranges of different clients overlap within a context).
std::vector<StepIndex> accessesOf(int c) {
  std::vector<StepIndex> steps;
  steps.reserve(kAccessesPerClient);
  for (int k = 0; k < kAccessesPerClient; ++k) {
    steps.push_back(static_cast<StepIndex>((c * 7 + k * 5) % kStepSpan));
  }
  return steps;
}

/// Records launches so the replay can complete them synchronously after
/// the triggering request returns (a fleet whose jobs always finish
/// before the next access).
class RecordingLauncher final : public SimLauncher {
 public:
  struct Launched {
    SimJobId id;
    simmodel::JobSpec spec;
  };
  void launch(SimJobId job, const simmodel::JobSpec& spec) override {
    pending.push_back({job, spec});
  }
  void kill(SimJobId) override {}
  std::vector<Launched> pending;
};

/// Replays every access single-threaded and returns, per context, the set
/// of steps available at the end.
std::vector<std::set<StepIndex>> replaySingleThreaded() {
  ManualClock clock;
  RecordingLauncher launcher;
  DataVirtualizer dv(clock);
  dv.setLauncher(&launcher);
  std::vector<ContextConfig> cfgs;
  for (int i = 0; i < kContexts; ++i) {
    cfgs.push_back(stressConfig(i));
    EXPECT_TRUE(
        dv.registerContext(std::make_unique<simmodel::SyntheticDriver>(cfgs[i]))
            .isOk());
  }
  const auto completeLaunches = [&] {
    while (!launcher.pending.empty()) {
      const auto job = launcher.pending.back();
      launcher.pending.pop_back();
      const auto& cfg = cfgs[std::stoi(job.spec.context.substr(3))];
      dv.simulationStarted(job.id);
      for (StepIndex s = job.spec.startStep; s <= job.spec.stopStep; ++s) {
        dv.simulationFileWritten(job.id, cfg.codec.outputFile(s));
      }
      dv.simulationFinished(job.id, Status::ok());
    }
  };
  for (int c = 0; c < kClients; ++c) {
    const int ctx = c % kContexts;
    const auto client = dv.clientConnect(contextName(ctx)).value();
    for (const StepIndex step : accessesOf(c)) {
      const std::string file = cfgs[ctx].codec.outputFile(step);
      (void)dv.clientOpen(client, file);
      completeLaunches();
      (void)dv.clientRelease(client, file);
    }
    dv.clientDisconnect(client);
  }
  std::vector<std::set<StepIndex>> available(kContexts);
  for (int i = 0; i < kContexts; ++i) {
    const auto steps = cfgs[i].geometry.numOutputSteps();
    for (StepIndex s = 0; s < steps; ++s) {
      if (dv.isAvailable(contextName(i), s)) available[i].insert(s);
    }
  }
  return available;
}

TEST(DaemonStressTest, ConcurrentClientsMatchSingleThreadedReplay) {
  const std::string path =
      "/tmp/simfs_stress_" + std::to_string(::getpid()) + ".sock";
  Daemon::Options options;
  options.shards = kContexts;  // one shard per context
  options.workers = kContexts;
  auto daemon = std::make_unique<Daemon>(options);
  vfs::MemFileStore store;
  auto fleet = std::make_unique<simulator::ThreadedSimulatorFleet>(
      *daemon, store, /*timeScale=*/1.0);
  std::vector<ContextConfig> cfgs;
  for (int i = 0; i < kContexts; ++i) {
    cfgs.push_back(stressConfig(i));
    ASSERT_TRUE(
        daemon
            ->registerContext(std::make_unique<simmodel::SyntheticDriver>(cfgs[i]))
            .isOk());
    fleet->registerContext(cfgs[i]);
  }
  daemon->setLauncher(fleet.get());
  ASSERT_TRUE(daemon->listen(path).isOk());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      const int ctx = c % kContexts;
      auto conn = msg::unixSocketConnect(path);
      if (!conn.isOk()) {
        ++failures;
        return;
      }
      auto client = dvlib::SimFSClient::connect(std::move(*conn),
                                                contextName(ctx));
      if (!client.isOk()) {
        ++failures;
        return;
      }
      for (const StepIndex step : accessesOf(c)) {
        const std::string file = cfgs[ctx].codec.outputFile(step);
        if (!(*client)->acquire({file}).isOk() ||
            !(*client)->release(file).isOk()) {
          ++failures;
          return;
        }
      }
      (*client)->finalize();
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Quiesce: demand jobs keep producing the rest of their restart
  // interval after the acquiring client was already notified, and their
  // final events may still sit in shard queues after the job threads
  // exit — wait until every queued request has been served too.
  const auto quiesced = [&] {
    if (fleet->activeJobs() > 0) return false;
    for (const auto& c : daemon->shardCounters()) {
      if (c.queued > 0 || c.served < c.enqueued) return false;
    }
    return true;
  };
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!quiesced() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(quiesced()) << "daemon pipeline did not quiesce";

  const auto expected = replaySingleThreaded();
  for (int i = 0; i < kContexts; ++i) {
    const auto steps = cfgs[i].geometry.numOutputSteps();
    for (StepIndex s = 0; s < steps; ++s) {
      EXPECT_EQ(daemon->isAvailable(contextName(i), s),
                expected[i].count(s) > 0)
          << "context " << i << " step " << s;
    }
  }

  // Aggregate accounting: every acquire was exactly one open, none lost.
  const auto stats = daemon->stats();
  EXPECT_EQ(stats.opens,
            static_cast<std::uint64_t>(kClients) * kAccessesPerClient);
  EXPECT_EQ(stats.hits + stats.misses, stats.opens);
  EXPECT_EQ(stats.prefetchJobs, 0u);
  EXPECT_EQ(stats.jobsKilled, 0u);

  // Per-shard counters saw the traffic, and only the shards that own
  // contexts did (one context per shard here).
  const auto counters = daemon->shardCounters();
  ASSERT_EQ(counters.size(), static_cast<std::size_t>(kContexts));
  for (const auto& c : counters) {
    EXPECT_EQ(c.contexts.size(), 1u);
    EXPECT_GT(c.served, 0u);
    EXPECT_EQ(c.queued, 0u);
    EXPECT_GT(c.residentSteps, 0u);
  }

  fleet.reset();
  daemon.reset();
}

}  // namespace
}  // namespace simfs::dv
