// Tests for the io_uring reactor backend. This is a dedicated binary
// because the process-wide Reactor reads SIMFS_REACTOR_BACKEND exactly
// once, on first use — the env override below must land before any other
// test touches a transport.
#include "msg/message.hpp"
#include "msg/transport.hpp"
#include "msg/uring.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

namespace simfs::msg {
namespace {

using namespace std::chrono_literals;

/// Installed before main() runs — and therefore before the shared Reactor
/// can possibly have been constructed by any static initializer ordering
/// trick in the tests themselves.
const bool kEnvInstalled = [] {
  ::setenv("SIMFS_REACTOR_BACKEND", "uring", 1);
  // Keep the data plane on the socket: these tests target the reactor
  // backend, and shm would bypass it entirely after the upgrade.
  ::setenv("SIMFS_SHM", "0", 1);
  return true;
}();

class UringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(kEnvInstalled);
    if (!uring::supported()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel/container; "
                      "backend fell back to "
                   << reactorBackendName();
    }
    ASSERT_EQ(reactorBackendName(), "uring")
        << "SIMFS_REACTOR_BACKEND=uring did not take effect";
    path_ = "/tmp/simfs_uring_test_" + std::to_string(::getpid()) + ".sock";
  }
  std::string path_;
};

Message request(std::uint64_t id, std::size_t textBytes) {
  Message m;
  m.type = MsgType::kAcquireReq;
  m.requestId = id;
  m.context = "cosmo-5min";
  m.text = std::string(textBytes, 'u');
  return m;
}

TEST_F(UringTest, RequestReplyRoundTrip) {
  UnixSocketServer server(path_);
  std::mutex mu;
  std::vector<std::unique_ptr<Transport>> conns;
  ASSERT_TRUE(server
                  .start([&](std::unique_ptr<Transport> conn) {
                    auto* raw = conn.get();
                    raw->setHandler([raw](Message&& m) {
                      m.type = MsgType::kAcquireAck;
                      (void)raw->send(m);
                    });
                    std::lock_guard lock(mu);
                    conns.push_back(std::move(conn));
                  })
                  .isOk());

  auto client = unixSocketConnect(path_);
  ASSERT_TRUE(client.isOk());
  std::mutex rmu;
  std::condition_variable rcv;
  std::vector<Message> replies;
  (*client)->setHandler([&](Message&& m) {
    std::lock_guard lock(rmu);
    replies.push_back(std::move(m));
    rcv.notify_all();
  });
  ASSERT_TRUE((*client)->send(request(7, 32)).isOk());
  {
    std::unique_lock lock(rmu);
    ASSERT_TRUE(rcv.wait_for(lock, 5s, [&] { return !replies.empty(); }));
  }
  EXPECT_EQ(replies[0].type, MsgType::kAcquireAck);
  EXPECT_EQ(replies[0].requestId, 7u);
  (*client)->close();
  server.stop();
}

TEST_F(UringTest, LargeFramesCrossProvidedBufferBoundaries) {
  // Frames far larger than any provided-buffer slab must reassemble
  // correctly through the multishot recv path.
  UnixSocketServer server(path_);
  std::mutex mu;
  std::vector<std::unique_ptr<Transport>> conns;
  ASSERT_TRUE(server
                  .start([&](std::unique_ptr<Transport> conn) {
                    auto* raw = conn.get();
                    raw->setHandler([raw](Message&& m) { (void)raw->send(m); });
                    std::lock_guard lock(mu);
                    conns.push_back(std::move(conn));
                  })
                  .isOk());
  auto client = unixSocketConnect(path_);
  ASSERT_TRUE(client.isOk());
  std::mutex rmu;
  std::condition_variable rcv;
  std::vector<Message> replies;
  (*client)->setHandler([&](Message&& m) {
    std::lock_guard lock(rmu);
    replies.push_back(std::move(m));
    rcv.notify_all();
  });
  for (const std::size_t bytes :
       {std::size_t{1}, std::size_t{64} << 10, std::size_t{5} << 20}) {
    const auto msg = request(bytes, bytes);
    ASSERT_TRUE((*client)->send(msg).isOk());
    {
      std::unique_lock lock(rmu);
      ASSERT_TRUE(rcv.wait_for(lock, 10s, [&] { return !replies.empty(); }));
    }
    EXPECT_EQ(replies[0].text, msg.text);
    replies.clear();
  }
  (*client)->close();
  server.stop();
}

TEST_F(UringTest, ManyMessagesKeepOrderUnderBatchedWrites) {
  UnixSocketServer server(path_);
  std::mutex mu;
  std::vector<std::unique_ptr<Transport>> conns;
  ASSERT_TRUE(server
                  .start([&](std::unique_ptr<Transport> conn) {
                    auto* raw = conn.get();
                    raw->setHandler([raw](Message&& m) { (void)raw->send(m); });
                    std::lock_guard lock(mu);
                    conns.push_back(std::move(conn));
                  })
                  .isOk());
  auto client = unixSocketConnect(path_);
  ASSERT_TRUE(client.isOk());
  std::mutex rmu;
  std::condition_variable rcv;
  std::vector<std::uint64_t> ids;
  (*client)->setHandler([&](Message&& m) {
    std::lock_guard lock(rmu);
    ids.push_back(m.requestId);
    rcv.notify_all();
  });
  constexpr int kCount = 2000;
  for (int i = 0; i < kCount; ++i) {
    // Mixed sizes: some inline-sized, some spilling, to batch writev
    // submissions in every shape.
    ASSERT_TRUE((*client)
                    ->send(request(static_cast<std::uint64_t>(i),
                                   static_cast<std::size_t>(i % 7) * 300))
                    .isOk());
  }
  {
    std::unique_lock lock(rmu);
    ASSERT_TRUE(
        rcv.wait_for(lock, 30s, [&] { return ids.size() == kCount; }));
  }
  for (int i = 0; i < kCount; ++i) {
    ASSERT_EQ(ids[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(i));
  }
  (*client)->close();
  server.stop();
}

TEST_F(UringTest, CloseHandlerFiresOnPeerDrop) {
  UnixSocketServer server(path_);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::unique_ptr<Transport>> conns;
  ASSERT_TRUE(server
                  .start([&](std::unique_ptr<Transport> conn) {
                    std::lock_guard lock(mu);
                    conns.push_back(std::move(conn));
                    cv.notify_all();
                  })
                  .isOk());
  auto client = unixSocketConnect(path_);
  ASSERT_TRUE(client.isOk());
  std::mutex rmu;
  std::condition_variable rcv;
  bool closed = false;
  (*client)->setHandler([](Message&&) {});
  (*client)->setCloseHandler([&] {
    std::lock_guard lock(rmu);
    closed = true;
    rcv.notify_all();
  });
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return !conns.empty(); }));
    conns.clear();  // server drops the connection
  }
  {
    std::unique_lock lock(rmu);
    EXPECT_TRUE(rcv.wait_for(lock, 10s, [&] { return closed; }));
  }
  EXPECT_FALSE((*client)->isOpen());
  server.stop();
}

}  // namespace
}  // namespace simfs::msg
