// Virtual-time integration tests: the full SimFS stack (analysis actors ->
// DV -> prefetch agents -> DES simulator fleet) replaying the paper's
// worked examples of Sec. IV (Figs. 7-9) and general invariants.
#include "harness/scenario.hpp"

#include <gtest/gtest.h>

namespace simfs::harness {
namespace {

using simmodel::ContextConfig;
using simmodel::PerfModel;
using simmodel::StepGeometry;

/// The textbook setup of Figs. 7-9: delta_d=1, delta_r=4, alpha_sim=2,
/// tau_sim=1, tau_cli=1/2 (1 paper time unit = 1 second).
ContextConfig paperConfig() {
  ContextConfig cfg;
  cfg.name = "paper";
  cfg.geometry = StepGeometry(1, 4, 64);
  cfg.outputStepBytes = 1;
  cfg.cacheQuotaBytes = 0;  // no eviction in the schedule examples
  cfg.sMax = 8;
  cfg.perf = PerfModel(1, vtime::kSecond, 2 * vtime::kSecond);
  return cfg;
}

AnalysisSpec forwardAnalysis(int m, VDuration tauCli) {
  AnalysisSpec spec;
  spec.startTime = 0;
  spec.steps = trace::makeForwardTrace(0, m, 1'000'000);
  spec.tauCli = tauCli;
  spec.label = "fwd";
  return spec;
}

TEST(ScenarioFig7Test, NoPrefetchingTimingMatchesHandComputation) {
  // Fig. 7: every interval miss costs the full restart latency. With 12
  // accesses, tau_cli=0.5s: analysis completes at t=21.5 s (see the
  // schedule walk-through in the paper and in bench/fig07_11).
  ScenarioConfig cfg;
  cfg.context = paperConfig();
  cfg.context.prefetchEnabled = false;
  cfg.analyses = {forwardAnalysis(12, vtime::kSecond / 2)};
  const auto res = runScenario(cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.analyses[0].completion(), 21'500 * vtime::kMillisecond);
  EXPECT_EQ(res.dv.demandJobs, 3u);   // one per restart interval
  EXPECT_EQ(res.dv.prefetchJobs, 0u);
}

TEST(ScenarioFig8Test, MaskingScheduleIsPinned) {
  // With masking only (Fig. 8), the 12-access textbook analysis finishes
  // at t = 15.0: the first interval pays the full latency (step 0 ready
  // at t=3), production then pipelines one interval ahead.
  ScenarioConfig cfg;
  cfg.context = paperConfig();
  cfg.context.bandwidthMatchingEnabled = false;
  cfg.analyses = {forwardAnalysis(12, vtime::kSecond / 2)};
  const auto res = runScenario(cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.analyses[0].completion(), 15 * vtime::kSecond);
}

TEST(ScenarioFig8Test, MaskingBeatsNoPrefetching) {
  ScenarioConfig base;
  base.context = paperConfig();
  base.context.prefetchEnabled = false;
  base.analyses = {forwardAnalysis(12, vtime::kSecond / 2)};
  const auto noPrefetch = runScenario(base);

  ScenarioConfig masked = base;
  masked.context.prefetchEnabled = true;
  masked.context.bandwidthMatchingEnabled = false;  // Fig. 8: masking only
  const auto masking = runScenario(masked);

  ASSERT_TRUE(noPrefetch.completed);
  ASSERT_TRUE(masking.completed);
  EXPECT_LT(masking.analyses[0].completion(),
            noPrefetch.analyses[0].completion());
  EXPECT_GT(masking.dv.prefetchJobs, 0u);
}

TEST(ScenarioFig9Test, BandwidthMatchingBeatsMaskingOnly) {
  ScenarioConfig masked;
  masked.context = paperConfig();
  masked.context.bandwidthMatchingEnabled = false;
  masked.analyses = {forwardAnalysis(24, vtime::kSecond / 2)};
  const auto masking = runScenario(masked);

  ScenarioConfig matched = masked;
  matched.context.bandwidthMatchingEnabled = true;  // Fig. 9
  const auto matching = runScenario(matched);

  ASSERT_TRUE(masking.completed);
  ASSERT_TRUE(matching.completed);
  EXPECT_LE(matching.analyses[0].completion(),
            masking.analyses[0].completion());
}

TEST(ScenarioBackwardTest, BackwardAnalysisCompletes) {
  ScenarioConfig cfg;
  cfg.context = paperConfig();
  AnalysisSpec spec;
  spec.steps = trace::makeBackwardTrace(27, 28, 64);
  spec.tauCli = vtime::kSecond / 2;
  spec.label = "bwd";
  cfg.analyses = {spec};
  const auto res = runScenario(cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.analyses[0].accesses, 28u);
  EXPECT_EQ(res.analyses[0].failures, 0u);
  // Prefetching must have produced earlier intervals ahead of the scan.
  EXPECT_GT(res.dv.prefetchJobs, 0u);
}

TEST(ScenarioSmaxTest, MoreParallelSimulationsShortenAnalysis) {
  VDuration prev = 0;
  for (const int smax : {1, 4, 8}) {
    ScenarioConfig cfg;
    cfg.context = paperConfig();
    cfg.context.sMax = smax;
    cfg.analyses = {forwardAnalysis(48, vtime::kMillisecond * 100)};
    const auto res = runScenario(cfg);
    ASSERT_TRUE(res.completed);
    if (prev != 0) EXPECT_LE(res.analyses[0].completion(), prev);
    prev = res.analyses[0].completion();
  }
}

TEST(ScenarioWarmCacheTest, PreloadedStepsNeverSimulate) {
  ScenarioConfig cfg;
  cfg.context = paperConfig();
  for (StepIndex s = 0; s < 12; ++s) cfg.preloadedSteps.push_back(s);
  cfg.analyses = {forwardAnalysis(12, vtime::kSecond / 2)};
  const auto res = runScenario(cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.dv.jobsLaunched, 0u);
  EXPECT_EQ(res.analyses[0].immediateHits, 12u);
  // Pure tau_cli pacing: 12 * 0.5 s.
  EXPECT_EQ(res.analyses[0].completion(), 6 * vtime::kSecond);
}

TEST(ScenarioEvictionTest, TinyCacheStillCompletes) {
  ScenarioConfig cfg;
  cfg.context = paperConfig();
  cfg.context.cacheQuotaBytes = 6;  // six steps
  cfg.context.prefetchEnabled = false;
  cfg.analyses = {forwardAnalysis(32, vtime::kMillisecond * 10)};
  const auto res = runScenario(cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.analyses[0].failures, 0u);
  EXPECT_GT(res.dv.evictions, 0u);
}

TEST(ScenarioPollutionTest, ThrashingCacheWithPrefetchStillCompletes) {
  // A cache smaller than one prefetch window forces produced-then-evicted
  // steps: pollution resets must fire and the analysis must still finish.
  ScenarioConfig cfg;
  cfg.context = paperConfig();
  cfg.context.cacheQuotaBytes = 4;
  cfg.context.sMax = 8;
  cfg.analyses = {forwardAnalysis(48, vtime::kMillisecond * 10)};
  const auto res = runScenario(cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.analyses[0].failures, 0u);
}

TEST(ScenarioMultiClientTest, ConcurrentAnalysesShareProducedData) {
  ScenarioConfig cfg;
  cfg.context = paperConfig();
  cfg.context.prefetchEnabled = false;
  auto a = forwardAnalysis(16, vtime::kSecond / 2);
  a.label = "a";
  auto b = forwardAnalysis(16, vtime::kSecond / 2);
  b.label = "b";
  b.startTime = vtime::kSecond;  // trails analysis a
  cfg.analyses = {a, b};
  const auto res = runScenario(cfg);
  ASSERT_TRUE(res.completed);
  // The trailing analysis rides on the leader's re-simulations: only one
  // demand job per interval in total.
  EXPECT_EQ(res.dv.demandJobs, 4u);
}

TEST(ScenarioQueueDelayTest, QueuingDelaysObservedAsLatency) {
  ScenarioConfig fast;
  fast.context = paperConfig();
  fast.context.prefetchEnabled = false;
  fast.analyses = {forwardAnalysis(8, vtime::kSecond / 2)};
  const auto noQueue = runScenario(fast);

  ScenarioConfig slow = fast;
  slow.batch.baseDelay = 5 * vtime::kSecond;
  const auto queued = runScenario(slow);

  ASSERT_TRUE(noQueue.completed);
  ASSERT_TRUE(queued.completed);
  // Two demand jobs, each delayed by 5 s of queue time.
  EXPECT_EQ(queued.analyses[0].completion() - noQueue.analyses[0].completion(),
            10 * vtime::kSecond);
}

TEST(ScenarioDeterminismTest, IdenticalConfigsReplayIdentically) {
  ScenarioConfig cfg;
  cfg.context = paperConfig();
  cfg.analyses = {forwardAnalysis(24, vtime::kSecond / 3)};
  cfg.batch.jitterMax = vtime::kSecond;
  const auto a = runScenario(cfg);
  const auto b = runScenario(cfg);
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.analyses[0].completion(), b.analyses[0].completion());
  EXPECT_EQ(a.dv.jobsLaunched, b.dv.jobsLaunched);
  EXPECT_EQ(a.dv.stepsProduced, b.dv.stepsProduced);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(ScenarioHorizonTest, HorizonStopsRunawayRuns) {
  ScenarioConfig cfg;
  cfg.context = paperConfig();
  cfg.analyses = {forwardAnalysis(64, vtime::kSecond)};
  cfg.horizon = 3 * vtime::kSecond;  // far too short to finish
  const auto res = runScenario(cfg);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.makespan, 3 * vtime::kSecond);
}

}  // namespace
}  // namespace simfs::harness
