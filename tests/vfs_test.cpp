// Unit tests for simfs::vfs — file stores and quota-tracked storage areas.
#include "vfs/file_store.hpp"
#include "vfs/storage_area.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace simfs::vfs {
namespace {

// ----------------------------------------------------------- MemFileStore

TEST(MemFileStoreTest, PutReadRoundTrip) {
  MemFileStore store;
  ASSERT_TRUE(store.put("a.snc", "hello").isOk());
  EXPECT_TRUE(store.exists("a.snc"));
  EXPECT_EQ(store.read("a.snc").value(), "hello");
}

TEST(MemFileStoreTest, StatReportsSizeAndChecksum) {
  MemFileStore store;
  ASSERT_TRUE(store.put("a.snc", "12345").isOk());
  const auto info = store.stat("a.snc");
  ASSERT_TRUE(info.isOk());
  EXPECT_EQ(info->size, 5u);
  EXPECT_NE(info->checksum, 0u);
}

TEST(MemFileStoreTest, RemoveAndMissing) {
  MemFileStore store;
  ASSERT_TRUE(store.put("a.snc", "x").isOk());
  EXPECT_TRUE(store.remove("a.snc").isOk());
  EXPECT_FALSE(store.exists("a.snc"));
  EXPECT_EQ(store.remove("a.snc").code(), StatusCode::kNotFound);
  EXPECT_EQ(store.read("a.snc").status().code(), StatusCode::kNotFound);
}

TEST(MemFileStoreTest, ListSortedAndTotals) {
  MemFileStore store;
  ASSERT_TRUE(store.put("b", "22").isOk());
  ASSERT_TRUE(store.put("a", "1").isOk());
  const auto names = store.list();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(store.totalBytes(), 3u);
}

TEST(MemFileStoreTest, OverwriteReplacesContent) {
  MemFileStore store;
  ASSERT_TRUE(store.put("a", "old").isOk());
  ASSERT_TRUE(store.put("a", "newer").isOk());
  EXPECT_EQ(store.read("a").value(), "newer");
  EXPECT_EQ(store.totalBytes(), 5u);
}

// ---------------------------------------------------------- DiskFileStore

class DiskFileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("simfs_vfs_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }
  std::filesystem::path root_;
};

TEST_F(DiskFileStoreTest, PutReadRoundTrip) {
  DiskFileStore store(root_.string());
  ASSERT_TRUE(store.put("out_1.snc", "payload").isOk());
  EXPECT_EQ(store.read("out_1.snc").value(), "payload");
  EXPECT_TRUE(std::filesystem::exists(root_ / "out_1.snc"));
}

TEST_F(DiskFileStoreTest, RejectsPathTraversal) {
  DiskFileStore store(root_.string());
  EXPECT_EQ(store.put("../evil", "x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.put("a/b", "x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.put("", "x").code(), StatusCode::kInvalidArgument);
}

TEST_F(DiskFileStoreTest, ListAndTotalBytes) {
  DiskFileStore store(root_.string());
  ASSERT_TRUE(store.put("b", "4444").isOk());
  ASSERT_TRUE(store.put("a", "22").isOk());
  const auto names = store.list();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(store.totalBytes(), 6u);
}

TEST_F(DiskFileStoreTest, RemoveUnlinks) {
  DiskFileStore store(root_.string());
  ASSERT_TRUE(store.put("x", "1").isOk());
  ASSERT_TRUE(store.remove("x").isOk());
  EXPECT_FALSE(std::filesystem::exists(root_ / "x"));
  EXPECT_EQ(store.remove("x").code(), StatusCode::kNotFound);
}

TEST_F(DiskFileStoreTest, StatMatchesMemStoreChecksum) {
  DiskFileStore disk(root_.string());
  MemFileStore mem;
  ASSERT_TRUE(disk.put("f", "identical-bytes").isOk());
  ASSERT_TRUE(mem.put("f", "identical-bytes").isOk());
  EXPECT_EQ(disk.stat("f")->checksum, mem.stat("f")->checksum);
}

// ------------------------------------------------------------ StorageArea

TEST(StorageAreaTest, TracksUsage) {
  StorageArea area("ctx", 100);
  ASSERT_TRUE(area.addFile("a", 40).isOk());
  ASSERT_TRUE(area.addFile("b", 50).isOk());
  EXPECT_EQ(area.used(), 90u);
  EXPECT_FALSE(area.overQuota());
  ASSERT_TRUE(area.addFile("c", 30).isOk());  // not enforced at add time
  EXPECT_TRUE(area.overQuota());
  EXPECT_EQ(area.excessBytes(), 20u);
}

TEST(StorageAreaTest, DuplicateAddRejected) {
  StorageArea area("ctx", 0);
  ASSERT_TRUE(area.addFile("a", 1).isOk());
  EXPECT_EQ(area.addFile("a", 1).code(), StatusCode::kAlreadyExists);
}

TEST(StorageAreaTest, RemoveRequiresZeroRefs) {
  StorageArea area("ctx", 0);
  ASSERT_TRUE(area.addFile("a", 10).isOk());
  ASSERT_TRUE(area.ref("a").isOk());
  EXPECT_EQ(area.removeFile("a").code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(area.unref("a").isOk());
  EXPECT_TRUE(area.removeFile("a").isOk());
  EXPECT_EQ(area.used(), 0u);
}

TEST(StorageAreaTest, RefCountingAndEvictability) {
  StorageArea area("ctx", 0);
  ASSERT_TRUE(area.addFile("a", 1).isOk());
  EXPECT_TRUE(area.evictable("a"));
  ASSERT_TRUE(area.ref("a").isOk());
  ASSERT_TRUE(area.ref("a").isOk());
  EXPECT_EQ(area.refCount("a"), 2);
  EXPECT_FALSE(area.evictable("a"));
  ASSERT_TRUE(area.unref("a").isOk());
  ASSERT_TRUE(area.unref("a").isOk());
  EXPECT_TRUE(area.evictable("a"));
  EXPECT_EQ(area.unref("a").code(), StatusCode::kFailedPrecondition);
}

TEST(StorageAreaTest, UnknownFilesRejected) {
  StorageArea area("ctx", 0);
  EXPECT_EQ(area.ref("nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(area.removeFile("nope").code(), StatusCode::kNotFound);
  EXPECT_FALSE(area.evictable("nope"));
  EXPECT_EQ(area.refCount("nope"), 0);
  EXPECT_EQ(area.sizeOf("nope"), 0u);
}

TEST(StorageAreaTest, UnlimitedQuotaNeverOver) {
  StorageArea area("ctx", 0);
  ASSERT_TRUE(area.addFile("big", 1'000'000'000).isOk());
  EXPECT_FALSE(area.overQuota());
  EXPECT_EQ(area.excessBytes(), 0u);
}

}  // namespace
}  // namespace simfs::vfs
