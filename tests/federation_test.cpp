// Federation tests: a 3-node DV ring served by three daemon pipelines
// (own sockets, own simulator fleets) must be indistinguishable, to the
// clients, from one big DV:
//
//   * routing-aware clients spread across the ring (some seeded with a
//     deliberately stale one-node ring so redirects are exercised)
//     observe exactly the availability sets of a single-node
//     DataVirtualizer replay of the same accesses,
//   * every context is served by its ring owner and nobody else
//     (verified through per-node serving stats),
//   * fire-and-forget simulator events sent to the wrong node are
//     transparently forwarded to the owner, and
//   * a one-node ring degenerates to standalone behavior: same counters,
//     zero redirects/forwards.
//
// The three daemons live in one process here (separate processes in the
// CI federation-smoke job) — they share nothing but Unix sockets, so the
// routing, redirect, and forwarding paths are identical.
#include "cluster/ring.hpp"
#include "dv/daemon.hpp"
#include "dv/data_virtualizer.hpp"
#include "dvlib/router.hpp"
#include "dvlib/simfs_client.hpp"
#include "msg/transport.hpp"
#include "simulator/threaded_fleet.hpp"
#include "vfs/file_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

namespace simfs::dv {
namespace {

using simmodel::ContextConfig;
using simmodel::PerfModel;
using simmodel::StepGeometry;

constexpr int kNodes = 3;
constexpr int kContexts = 6;
constexpr int kClients = 9;
constexpr int kAccessesPerClient = 10;
constexpr StepIndex kStepSpan = 48;

std::string contextName(int i) { return "ctx" + std::to_string(i); }

ContextConfig fedConfig(int i) {
  ContextConfig cfg;
  cfg.name = contextName(i);
  cfg.geometry = StepGeometry(1, 4, 64);
  cfg.outputStepBytes = 64;
  cfg.cacheQuotaBytes = 0;  // unlimited: end state is the produced union
  cfg.sMax = 8;
  cfg.prefetchEnabled = false;
  cfg.perf = PerfModel(2, 1 * vtime::kMillisecond, 2 * vtime::kMillisecond);
  return cfg;
}

std::vector<StepIndex> accessesOf(int c) {
  std::vector<StepIndex> steps;
  steps.reserve(kAccessesPerClient);
  for (int k = 0; k < kAccessesPerClient; ++k) {
    steps.push_back(static_cast<StepIndex>((c * 11 + k * 5) % kStepSpan));
  }
  return steps;
}

/// One ring member: daemon + store + fleet, serving a Unix socket.
struct Node {
  std::unique_ptr<Daemon> daemon;
  std::unique_ptr<vfs::MemFileStore> store;
  std::unique_ptr<simulator::ThreadedSimulatorFleet> fleet;
  std::string socketPath;
};

std::string socketPathFor(const std::string& tag, int i) {
  return "/tmp/simfs_fed_" + tag + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(i) + ".sock";
}

/// Builds the shared membership table (version 2, so the version-1 stale
/// client ring below is superseded by redirect payloads).
cluster::Ring fullRing(const std::string& tag) {
  std::vector<cluster::NodeInfo> members;
  for (int i = 0; i < kNodes; ++i) {
    members.push_back({"dv" + std::to_string(i), socketPathFor(tag, i)});
  }
  return cluster::Ring::make(std::move(members), /*version=*/2).value();
}

std::vector<Node> startCluster(const std::string& tag,
                               const cluster::Ring& ring, int replicas = 0) {
  std::vector<Node> nodes;
  for (int i = 0; i < kNodes; ++i) {
    Node node;
    Daemon::Options options;
    options.shards = 2;
    options.workers = 2;
    options.nodeId = "dv" + std::to_string(i);
    options.ring = ring;
    options.replicas = replicas;
    node.daemon = std::make_unique<Daemon>(options);
    node.store = std::make_unique<vfs::MemFileStore>();
    node.fleet = std::make_unique<simulator::ThreadedSimulatorFleet>(
        *node.daemon, *node.store, /*timeScale=*/1.0);
    for (int c = 0; c < kContexts; ++c) {
      const auto cfg = fedConfig(c);
      EXPECT_TRUE(node.daemon
                      ->registerContext(
                          std::make_unique<simmodel::SyntheticDriver>(cfg))
                      .isOk());
      node.fleet->registerContext(cfg);
    }
    node.daemon->setLauncher(node.fleet.get());
    node.socketPath = socketPathFor(tag, i);
    EXPECT_TRUE(node.daemon->listen(node.socketPath).isOk());
    nodes.push_back(std::move(node));
  }
  return nodes;
}

void quiesce(std::vector<Node>& nodes) {
  const auto quiet = [&] {
    for (auto& n : nodes) {
      if (n.fleet->activeJobs() > 0) return false;
      for (const auto& c : n.daemon->shardCounters()) {
        if (c.queued > 0 || c.served < c.enqueued) return false;
      }
    }
    return true;
  };
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!quiet() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(quiet()) << "federation did not quiesce";
}

/// Single-threaded replay of all accesses against one DataVirtualizer;
/// returns the per-context availability sets (the federation oracle).
/// `ctxOf` overrides the client->context assignment (default: modulo).
std::vector<std::set<StepIndex>> replaySingleNode(int (*ctxOf)(int) =
                                                      nullptr) {
  ManualClock clock;
  struct RecLauncher final : SimLauncher {
    struct L {
      SimJobId id;
      simmodel::JobSpec spec;
    };
    void launch(SimJobId job, const simmodel::JobSpec& spec) override {
      pending.push_back({job, spec});
    }
    void kill(SimJobId) override {}
    std::vector<L> pending;
  } launcher;
  DataVirtualizer dv(clock);
  dv.setLauncher(&launcher);
  std::vector<ContextConfig> cfgs;
  for (int i = 0; i < kContexts; ++i) {
    cfgs.push_back(fedConfig(i));
    EXPECT_TRUE(
        dv.registerContext(std::make_unique<simmodel::SyntheticDriver>(cfgs[i]))
            .isOk());
  }
  const auto completeLaunches = [&] {
    while (!launcher.pending.empty()) {
      const auto job = launcher.pending.back();
      launcher.pending.pop_back();
      const auto& cfg = cfgs[std::stoi(job.spec.context.substr(3))];
      dv.simulationStarted(job.id);
      for (StepIndex s = job.spec.startStep; s <= job.spec.stopStep; ++s) {
        dv.simulationFileWritten(job.id, cfg.codec.outputFile(s));
      }
      dv.simulationFinished(job.id, Status::ok());
    }
  };
  for (int c = 0; c < kClients; ++c) {
    const int ctx = ctxOf != nullptr ? ctxOf(c) : c % kContexts;
    const auto client = dv.clientConnect(contextName(ctx)).value();
    for (const StepIndex step : accessesOf(c)) {
      const std::string file = cfgs[ctx].codec.outputFile(step);
      (void)dv.clientOpen(client, file);
      completeLaunches();
      (void)dv.clientRelease(client, file);
    }
    dv.clientDisconnect(client);
  }
  std::vector<std::set<StepIndex>> available(kContexts);
  for (int i = 0; i < kContexts; ++i) {
    const auto steps = cfgs[i].geometry.numOutputSteps();
    for (StepIndex s = 0; s < steps; ++s) {
      if (dv.isAvailable(contextName(i), s)) available[i].insert(s);
    }
  }
  return available;
}

TEST(FederationTest, ThreeNodeRingMatchesSingleNodeReplay) {
  const std::string tag = "stress";
  const cluster::Ring ring = fullRing(tag);
  auto nodes = startCluster(tag, ring);

  // Half the clients resolve through the true ring; the others are
  // seeded with a stale one-node table pointing at dv0 (version 1) and
  // must be redirected onto the owner, adopting the ring the redirect
  // carries.
  const cluster::Ring staleRing =
      cluster::Ring::make({{"dv0", nodes[0].socketPath}}, /*version=*/1)
          .value();
  auto sharedRouter = dvlib::NodeRouter::overUnixSockets(ring);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  int expectedRedirects = 0;
  for (int c = 0; c < kClients; ++c) {
    const bool stale = c % 2 == 1;
    if (stale && ring.ownerOf(contextName(c % kContexts)).id != "dv0") {
      ++expectedRedirects;
    }
    threads.emplace_back([&, c, stale] {
      const int ctx = c % kContexts;
      auto router = stale ? dvlib::NodeRouter::overUnixSockets(staleRing)
                          : sharedRouter;
      auto client = dvlib::SimFSClient::connect(router, contextName(ctx));
      if (!client.isOk()) {
        ++failures;
        return;
      }
      for (const StepIndex step : accessesOf(c)) {
        const std::string file = fedConfig(ctx).codec.outputFile(step);
        if (!(*client)->acquire({file}).isOk() ||
            !(*client)->release(file).isOk()) {
          ++failures;
          return;
        }
      }
      (*client)->finalize();
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  quiesce(nodes);

  // Availability: for every context, the RING OWNER serves exactly the
  // single-node replay's set; non-owners never produced anything.
  const auto expected = replaySingleNode();
  for (int i = 0; i < kContexts; ++i) {
    const int owner = std::stoi(ring.ownerOf(contextName(i)).id.substr(2));
    ASSERT_FALSE(expected[i].empty()) << "oracle produced nothing?";
    const auto steps = fedConfig(i).geometry.numOutputSteps();
    for (StepIndex s = 0; s < steps; ++s) {
      EXPECT_EQ(nodes[owner].daemon->isAvailable(contextName(i), s),
                expected[i].count(s) > 0)
          << "context " << i << " step " << s << " owner dv" << owner;
      for (int n = 0; n < kNodes; ++n) {
        if (n == owner) continue;
        EXPECT_FALSE(nodes[n].daemon->isAvailable(contextName(i), s))
            << "non-owner dv" << n << " produced context " << i;
      }
    }
  }

  // Ownership: opens land only on ring owners, and add up exactly.
  std::uint64_t expectedOpens[kNodes] = {};
  for (int c = 0; c < kClients; ++c) {
    const int owner =
        std::stoi(ring.ownerOf(contextName(c % kContexts)).id.substr(2));
    expectedOpens[owner] += kAccessesPerClient;
  }
  std::uint64_t totalOpens = 0;
  for (int n = 0; n < kNodes; ++n) {
    const auto stats = nodes[n].daemon->stats();
    EXPECT_EQ(stats.opens, expectedOpens[n]) << "node dv" << n;
    totalOpens += stats.opens;
  }
  EXPECT_EQ(totalOpens,
            static_cast<std::uint64_t>(kClients) * kAccessesPerClient);

  // Redirects: every stale-seeded client whose context lives off dv0 was
  // bounced exactly once, by dv0; nobody else redirected anything.
  EXPECT_EQ(nodes[0].daemon->federationCounters().redirects,
            static_cast<std::uint64_t>(expectedRedirects));
  for (int n = 1; n < kNodes; ++n) {
    EXPECT_EQ(nodes[n].daemon->federationCounters().redirects, 0u)
        << "dv" << n;
  }

  for (auto& n : nodes) {
    n.fleet.reset();
    n.daemon.reset();
  }
}

TEST(FederationTest, WrongNodeSimulatorEventsAreForwarded) {
  const std::string tag = "fwd";
  const cluster::Ring ring = fullRing(tag);
  auto nodes = startCluster(tag, ring);

  // Pick any context owned by dv0 and a wrong node to aim at.
  int ctxIdx = -1;
  for (int i = 0; i < kContexts; ++i) {
    if (ring.ownerOf(contextName(i)).id == "dv0") {
      ctxIdx = i;
      break;
    }
  }
  ASSERT_GE(ctxIdx, 0) << "dv0 owns nothing (ring changed?)";
  const std::string ctx = contextName(ctxIdx);
  const auto cfg = fedConfig(ctxIdx);

  // Replace dv0's fleet with a recording launcher so the demand job
  // stays open until the test completes it over the wire.
  struct RecLauncher final : SimLauncher {
    void launch(SimJobId job, const simmodel::JobSpec& spec) override {
      std::lock_guard lock(mutex);
      jobs.push_back({job, spec});
      cv.notify_all();
    }
    void kill(SimJobId) override {}
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<std::pair<SimJobId, simmodel::JobSpec>> jobs;
  } launcher;
  nodes[0].daemon->setLauncher(&launcher);

  auto router = dvlib::NodeRouter::overUnixSockets(ring);
  auto client = dvlib::SimFSClient::connect(router, ctx);
  ASSERT_TRUE(client.isOk());

  const std::string file = cfg.codec.outputFile(0);
  auto info = (*client)->open(file);
  ASSERT_TRUE(info.isOk());
  ASSERT_FALSE(info->available);

  SimJobId job = 0;
  simmodel::JobSpec spec;
  {
    std::unique_lock lock(launcher.mutex);
    ASSERT_TRUE(launcher.cv.wait_for(lock, std::chrono::seconds(5),
                                     [&] { return !launcher.jobs.empty(); }));
    job = launcher.jobs[0].first;
    spec = launcher.jobs[0].second;
  }

  // Deliver the simulator events to the WRONG node (dv1): each must be
  // forwarded to dv0, which owns the context and issued the job id.
  auto wrong = msg::unixSocketConnect(nodes[1].socketPath);
  ASSERT_TRUE(wrong.isOk());
  (*wrong)->setHandler([](msg::Message&&) {});
  std::uint64_t sent = 0;
  for (StepIndex s = spec.startStep; s <= spec.stopStep; ++s) {
    msg::Message m;
    m.type = msg::MsgType::kSimFileClosed;
    m.context = ctx;
    m.intArg = static_cast<std::int64_t>(job);
    m.files = {cfg.codec.outputFile(s)};
    ASSERT_TRUE((*wrong)->send(m).isOk());
    ++sent;
  }
  msg::Message fin;
  fin.type = msg::MsgType::kSimFinished;
  fin.context = ctx;
  fin.intArg = static_cast<std::int64_t>(job);
  ASSERT_TRUE((*wrong)->send(fin).isOk());
  ++sent;

  // The forwarded events reach dv0 and release the blocked open.
  EXPECT_TRUE((*client)->waitFile(file).isOk());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (nodes[1].daemon->federationCounters().forwarded < sent &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(nodes[1].daemon->federationCounters().forwarded, sent);
  EXPECT_EQ(nodes[1].daemon->federationCounters().forwardDrops, 0u);
  EXPECT_EQ(nodes[0].daemon->federationCounters().forwarded, 0u);
  EXPECT_GT(nodes[0].daemon->stats().stepsProduced, 0u);

  (*client)->finalize();
  (*wrong)->close();
  for (auto& n : nodes) {
    n.fleet.reset();
    n.daemon.reset();
  }
}

TEST(FederationTest, DisagreeingRingsCannotPingPongForwards) {
  // Adversarial setup: nodeA's ring says nodeB owns everything relevant,
  // while nodeB's ring routes the same context back to nodeA's endpoint
  // (under a different member id). Without the single-hop bound a
  // forwarded event would bounce between them forever; with it, the
  // second node must process the event locally and forward nothing.
  const std::string pathA = socketPathFor("pingpong", 0);
  const std::string pathB = socketPathFor("pingpong", 1);

  // Ring for A, and a context A does NOT own (placement is pure hash,
  // so scan the context names for one landing on nodeB).
  const cluster::Ring ringA =
      cluster::Ring::make({{"nodeA", pathA}, {"nodeB", pathB}}).value();
  int ctxIdx = -1;
  for (int i = 0; i < kContexts; ++i) {
    if (ringA.ownerOf(contextName(i)).id == "nodeB") {
      ctxIdx = i;
      break;
    }
  }
  ASSERT_GE(ctxIdx, 0) << "nodeB owns none of the test contexts";
  const std::string ctx = contextName(ctxIdx);
  // Ring for B: B plus an alias whose endpoint is A, picked so B does
  // NOT own ctx either — B's table points the forward straight back.
  cluster::Ring ringB;
  for (const char* alias : {"nodeC", "nodeD", "nodeE", "nodeF"}) {
    auto candidate =
        cluster::Ring::make({{"nodeB", pathB}, {alias, pathA}}).value();
    if (candidate.ownerOf(ctx).id == alias) {
      ringB = candidate;
      break;
    }
  }
  ASSERT_FALSE(ringB.empty()) << "no alias maps ctx back to A's endpoint";

  const auto makeNode = [&](const std::string& id, const cluster::Ring& ring,
                            const std::string& path) {
    Node node;
    Daemon::Options options;
    options.shards = 1;
    options.workers = 1;
    options.nodeId = id;
    options.ring = ring;
    node.daemon = std::make_unique<Daemon>(options);
    node.store = std::make_unique<vfs::MemFileStore>();
    node.fleet = std::make_unique<simulator::ThreadedSimulatorFleet>(
        *node.daemon, *node.store, /*timeScale=*/1.0);
    const auto cfg = fedConfig(ctxIdx);
    EXPECT_TRUE(
        node.daemon
            ->registerContext(std::make_unique<simmodel::SyntheticDriver>(cfg))
            .isOk());
    node.fleet->registerContext(cfg);
    node.daemon->setLauncher(node.fleet.get());
    node.socketPath = path;
    EXPECT_TRUE(node.daemon->listen(path).isOk());
    return node;
  };
  Node a = makeNode("nodeA", ringA, pathA);
  Node b = makeNode("nodeB", ringB, pathB);

  auto conn = msg::unixSocketConnect(pathA);
  ASSERT_TRUE(conn.isOk());
  (*conn)->setHandler([](msg::Message&&) {});
  msg::Message ev;
  ev.type = msg::MsgType::kSimFileClosed;
  ev.context = ctx;
  ev.intArg = 12345;  // job id unknown everywhere: fails soft at B
  ev.files = {fedConfig(ctxIdx).codec.outputFile(0)};
  ASSERT_TRUE((*conn)->send(ev).isOk());

  // A forwards once (to B); B must NOT forward it back despite its ring
  // saying the owner is over at A's endpoint.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (a.daemon->federationCounters().forwarded < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(a.daemon->federationCounters().forwarded, 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(b.daemon->federationCounters().forwarded, 0u)
      << "hop bound violated: B re-forwarded a relayed event";
  EXPECT_EQ(a.daemon->federationCounters().forwarded, 1u)
      << "event bounced back to A";

  (*conn)->close();
  a.fleet.reset();
  a.daemon.reset();
  b.fleet.reset();
  b.daemon.reset();
}

TEST(FederationTest, OneNodeRingDegeneratesToStandalone) {
  const std::string tag = "solo";
  const std::string path = socketPathFor(tag, 0);
  const cluster::Ring ring =
      cluster::Ring::make({{"solo", path}}, /*version=*/1).value();

  // Run the same access sequence against (a) a federated one-node ring
  // and (b) a plain standalone daemon; every serving stat must agree.
  DvStats statsBy[2];
  for (int mode = 0; mode < 2; ++mode) {
    Daemon::Options options;
    options.shards = 2;
    options.workers = 2;
    if (mode == 0) {
      options.nodeId = "solo";
      options.ring = ring;
    }
    Daemon daemon(options);
    vfs::MemFileStore store;
    simulator::ThreadedSimulatorFleet fleet(daemon, store, /*timeScale=*/1.0);
    for (int c = 0; c < kContexts; ++c) {
      const auto cfg = fedConfig(c);
      ASSERT_TRUE(
          daemon
              .registerContext(std::make_unique<simmodel::SyntheticDriver>(cfg))
              .isOk());
      fleet.registerContext(cfg);
    }
    daemon.setLauncher(&fleet);
    if (mode == 0) {
      ASSERT_TRUE(daemon.listen(path).isOk());
    }

    for (int c = 0; c < 4; ++c) {
      const int ctx = c % kContexts;
      std::unique_ptr<dvlib::SimFSClient> client;
      if (mode == 0) {
        auto router = dvlib::NodeRouter::overUnixSockets(ring);
        auto connected = dvlib::SimFSClient::connect(router, contextName(ctx));
        ASSERT_TRUE(connected.isOk());
        client = std::move(*connected);
      } else {
        auto connected = dvlib::SimFSClient::connect(daemon.connectInProc(),
                                                     contextName(ctx));
        ASSERT_TRUE(connected.isOk());
        client = std::move(*connected);
      }
      for (const StepIndex step : accessesOf(c)) {
        const std::string file = fedConfig(ctx).codec.outputFile(step);
        ASSERT_TRUE(client->acquire({file}).isOk());
        ASSERT_TRUE(client->release(file).isOk());
      }
      client->finalize();
    }

    const auto quiet = [&] {
      if (fleet.activeJobs() > 0) return false;
      for (const auto& sc : daemon.shardCounters()) {
        if (sc.queued > 0 || sc.served < sc.enqueued) return false;
      }
      return true;
    };
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (!quiet() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(quiet());

    statsBy[mode] = daemon.stats();
    EXPECT_EQ(daemon.federationCounters().redirects, 0u);
    EXPECT_EQ(daemon.federationCounters().forwarded, 0u);
    daemon.stop();
    fleet.joinAll();
  }
  EXPECT_EQ(statsBy[0].opens, statsBy[1].opens);
  EXPECT_EQ(statsBy[0].hits, statsBy[1].hits);
  EXPECT_EQ(statsBy[0].misses, statsBy[1].misses);
  EXPECT_EQ(statsBy[0].jobsLaunched, statsBy[1].jobsLaunched);
  EXPECT_EQ(statsBy[0].stepsProduced, statsBy[1].stepsProduced);
}

TEST(FederationTest, BatchedOpenFollowsRedirect) {
  // A routing-aware session holds an in-flight kOpenBatchReq when the
  // serving node answers kRedirect (here: a scripted impostor node that
  // accepts the hello but disowns the context on first use). The session
  // must rebind to the named owner — dial, re-hello — and RESEND the
  // batch there under the same request id, completing the acquire as if
  // nothing happened, without duplicating the batch on either node.
  const auto cfg = fedConfig(0);
  const std::string ctx = contextName(0);

  Daemon realDaemon;  // standalone: accepts any context it serves
  vfs::MemFileStore store;
  simulator::ThreadedSimulatorFleet fleet(realDaemon, store, /*timeScale=*/1.0);
  ASSERT_TRUE(
      realDaemon
          .registerContext(std::make_unique<simmodel::SyntheticDriver>(cfg))
          .isOk());
  fleet.registerContext(cfg);
  realDaemon.setLauncher(&fleet);

  // Whichever node the hash picks for `ctx` plays the impostor; the
  // other one fronts the real daemon — so the first batch always lands
  // on the scripted node, whatever the ring says.
  const cluster::Ring ring =
      cluster::Ring::make({{"dvA", "ep-A"}, {"dvB", "ep-B"}}, /*version=*/2)
          .value();
  const std::string fakeId = ring.ownerOf(ctx).id;
  const std::string realId = fakeId == "dvA" ? "dvB" : "dvA";
  const std::string fakeEp = ring.find(fakeId)->endpoint;
  std::vector<std::string> ringEntries;
  for (const auto& n : ring.nodes()) {
    ringEntries.push_back(n.id + "=" + n.endpoint);
  }

  std::atomic<int> batchReqsAtFake{0};
  std::atomic<int> batchReqsAtReal{0};
  std::vector<std::unique_ptr<msg::Transport>> fakeEnds;
  std::mutex fakeMutex;

  /// Counts kOpenBatchReq on the real link (resend exactly once).
  class CountingTransport final : public msg::Transport {
   public:
    CountingTransport(std::unique_ptr<msg::Transport> inner,
                      std::atomic<int>& batches)
        : inner_(std::move(inner)), batches_(batches) {}
    Status send(const msg::Message& m) override {
      if (m.type == msg::MsgType::kOpenBatchReq) ++batches_;
      return inner_->send(m);
    }
    void setHandler(Handler h) override { inner_->setHandler(std::move(h)); }
    void setCloseHandler(std::function<void()> h) override {
      inner_->setCloseHandler(std::move(h));
    }
    void close() override { inner_->close(); }
    [[nodiscard]] bool isOpen() const override { return inner_->isOpen(); }

   private:
    std::unique_ptr<msg::Transport> inner_;
    std::atomic<int>& batches_;
  };

  auto router = std::make_shared<dvlib::NodeRouter>(
      ring,
      [&](const std::string& endpoint)
          -> Result<std::unique_ptr<msg::Transport>> {
        if (endpoint != fakeEp) {
          return std::unique_ptr<msg::Transport>(
              std::make_unique<CountingTransport>(realDaemon.connectInProc(),
                                                  batchReqsAtReal));
        }
        // The impostor: hello succeeds, the first batched open bounces.
        auto [serverEnd, clientEnd] = msg::makeInProcPair();
        msg::Transport* raw = serverEnd.get();
        raw->setHandler(
            [raw, &batchReqsAtFake, ringEntries, realId](msg::Message&& m) {
              msg::Message reply;
              reply.requestId = m.requestId;
              if (m.type == msg::MsgType::kHello) {
                reply.type = msg::MsgType::kHelloAck;
                reply.intArg = 4242;
                (void)raw->send(reply);
              } else if (m.type == msg::MsgType::kOpenBatchReq) {
                ++batchReqsAtFake;
                reply.type = msg::MsgType::kRedirect;
                reply.text = realId;
                reply.files = ringEntries;
                reply.intArg = 2;  // ring version
                (void)raw->send(reply);
              }
            });
        std::lock_guard lock(fakeMutex);
        fakeEnds.push_back(std::move(serverEnd));
        return std::move(clientEnd);
      });

  auto connected = dvlib::Session::connect(router, ctx);
  ASSERT_TRUE(connected.isOk()) << connected.status().toString();
  std::shared_ptr<dvlib::Session> session = std::move(*connected);

  const std::string file = cfg.codec.outputFile(3);
  dvlib::SimfsStatus status;
  ASSERT_TRUE(session->acquire({file}, &status).isOk())
      << status.error.toString();
  EXPECT_TRUE(store.exists(file));
  EXPECT_TRUE(realDaemon.isAvailable(ctx, 3));

  EXPECT_EQ(batchReqsAtFake.load(), 1) << "batch not sent to first owner";
  EXPECT_EQ(batchReqsAtReal.load(), 1)
      << "batch must be resent exactly once after the redirect";

  // Exactly one reference was registered end-to-end (no duplicate from
  // the resend): the second release must fail.
  ASSERT_TRUE(session->release(file).isOk());
  EXPECT_EQ(session->release(file).code(), StatusCode::kFailedPrecondition);

  session->finalize();
}

// ----------------------------------------------------------- replica leases

/// Zipf(~1.1) client fan-in over the context ranks: 4-2-1-1-1 across the
/// nine clients, ctx0 hot — the serving skew the lease plane exists for.
int zipfClientContext(int c) {
  static constexpr int kMap[kClients] = {0, 0, 0, 0, 1, 1, 2, 3, 4};
  return kMap[c];
}

/// Replica-side lease view of `ctx` on `node` (generation + step count),
/// or nullopt while no lease has been applied yet.
std::optional<LeaseView> replicaLeaseOf(const Node& node,
                                        const std::string& ctx) {
  for (const auto& sc : node.daemon->shardCounters()) {
    for (const auto& [name, view] : sc.leases) {
      if (name == ctx && view.replica) return view;
    }
  }
  return std::nullopt;
}

bool pollUntil(const std::function<bool()>& pred, int seconds = 20) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Raw replica-capable read: dials `socketPath`, hellos into `ctx` with
/// kHelloCapReplica, batch-opens `file`, and returns the per-file packed
/// outcome (StatusCode * 2 + available) from the kOpenBatchAck — the
/// ground truth of what THIS node serves, with no client-side fallback
/// masking it. Returns -1 on any transport/protocol failure.
std::int64_t probeReplicaOpen(const std::string& socketPath,
                              const std::string& ctx,
                              const std::string& file) {
  auto conn = msg::unixSocketConnect(socketPath);
  if (!conn.isOk()) return -1;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<msg::Message> replies;
  (*conn)->setHandler([&](msg::Message&& m) {
    std::lock_guard lock(mu);
    replies.push_back(std::move(m));
    cv.notify_all();
  });
  const auto awaitReply = [&](std::uint64_t id) -> std::optional<msg::Message> {
    std::unique_lock lock(mu);
    msg::Message out;
    const bool got = cv.wait_for(lock, std::chrono::seconds(10), [&] {
      // The daemon's requestId-0 kRingUpdate push is filtered out here.
      for (auto& r : replies) {
        if (r.requestId != id) continue;
        out = std::move(r);
        return true;
      }
      return false;
    });
    if (!got) return std::nullopt;
    return out;
  };
  msg::Message hello;
  hello.type = msg::MsgType::kHello;
  hello.requestId = 1;
  hello.context = ctx;
  hello.intArg2 = msg::kHelloCapReplica;
  if (!(*conn)->send(hello).isOk()) return -1;
  const auto helloAck = awaitReply(1);
  if (!helloAck || helloAck->type != msg::MsgType::kHelloAck ||
      helloAck->code != 0) {
    (*conn)->close();
    return -1;
  }
  msg::Message open;
  open.type = msg::MsgType::kOpenBatchReq;
  open.requestId = 2;
  open.context = ctx;
  open.files = {file};
  std::int64_t packed = -1;
  if ((*conn)->send(open).isOk()) {
    const auto ack = awaitReply(2);
    if (ack && ack->ints.size() >= 2) packed = ack->ints[0];
  }
  (*conn)->close();
  return packed;
}

TEST(FederationTest, ZipfReplicaReadsMatchReplayAndSpreadServing) {
  const std::string tag = "zipf";
  const cluster::Ring ring = fullRing(tag);
  auto nodes = startCluster(tag, ring, /*replicas=*/2);
  auto router = dvlib::NodeRouter::overUnixSockets(ring);

  // Phase A: the Zipf-skewed 9-client workload through routing-aware
  // clients. Sessions learn R from the daemons' hello-time ring push and
  // spread reads over owner + replicas on their own. Contexts run
  // concurrently; clients SHARING a context run in client order — what a
  // context produces depends on its access order, so this is the one
  // schedule the sequential replay oracle can predict exactly.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int ctx = 0; ctx < kContexts; ++ctx) {
    threads.emplace_back([&, ctx] {
      for (int c = 0; c < kClients; ++c) {
        if (zipfClientContext(c) != ctx) continue;
        auto client = dvlib::SimFSClient::connect(router, contextName(ctx));
        if (!client.isOk()) {
          ++failures;
          return;
        }
        for (const StepIndex step : accessesOf(c)) {
          const std::string file = fedConfig(ctx).codec.outputFile(step);
          if (!(*client)->acquire({file}).isOk() ||
              !(*client)->release(file).isOk()) {
            ++failures;
            return;
          }
        }
        (*client)->finalize();
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  quiesce(nodes);

  // Parity: replica serving must not perturb WHAT exists. Owners hold
  // exactly the single-node replay's availability sets; replicas, which
  // only serve reads off leases, never produced a step.
  const auto expected = replaySingleNode(zipfClientContext);
  std::size_t producedTotal = 0;
  for (int i = 0; i < kContexts; ++i) {
    const int owner = std::stoi(ring.ownerOf(contextName(i)).id.substr(2));
    const auto steps = fedConfig(i).geometry.numOutputSteps();
    for (StepIndex s = 0; s < steps; ++s) {
      EXPECT_EQ(nodes[owner].daemon->isAvailable(contextName(i), s),
                expected[i].count(s) > 0)
          << "context " << i << " step " << s << " owner dv" << owner;
      for (int n = 0; n < kNodes; ++n) {
        if (n == owner) continue;
        EXPECT_FALSE(nodes[n].daemon->isAvailable(contextName(i), s))
            << "replica dv" << n << " produced context " << i;
      }
    }
    producedTotal += expected[i].size();
  }

  // Every acquire was served exactly once: either by its ring owner
  // (stats.opens) or off a replica lease (replicaHits) — the two
  // counters partition the workload, and kNotLeased bounces count in
  // neither (the client's owner retry does).
  std::uint64_t opens = 0;
  std::uint64_t replicaHits = 0;
  for (auto& n : nodes) {
    opens += n.daemon->stats().opens;
    for (const auto& sc : n.daemon->shardCounters()) {
      replicaHits += sc.replicaHits;
    }
  }
  EXPECT_EQ(opens + replicaHits,
            static_cast<std::uint64_t>(kClients) * kAccessesPerClient);

  // Phase B: with the working set resident and leases propagated (every
  // produced step leased to both successors), hammer the hot context
  // through one spread session — a visible share of the serving must
  // land on the replicas.
  ASSERT_TRUE(pollUntil([&] {
    std::size_t leased = 0;
    for (auto& n : nodes) {
      for (const auto& sc : n.daemon->shardCounters()) {
        leased += sc.leasedSteps;
      }
    }
    return leased >= 2 * producedTotal;
  })) << "lease propagation stalled";

  const int hot = zipfClientContext(0);
  std::vector<StepIndex> residentSteps(expected[hot].begin(),
                                       expected[hot].end());
  ASSERT_FALSE(residentSteps.empty());
  auto connected = dvlib::Session::connect(router, contextName(hot));
  ASSERT_TRUE(connected.isOk());
  std::shared_ptr<dvlib::Session> session = std::move(*connected);
  const std::string first =
      fedConfig(hot).codec.outputFile(residentSteps[0]);
  ASSERT_TRUE(session->acquire({first}).isOk());  // triggers link setup
  ASSERT_TRUE(session->release(first).isOk());
  ASSERT_TRUE(pollUntil([&] { return session->replicaEndpoints() == 2; }))
      << "replica links did not come up";
  const std::uint64_t hitsBefore = [&] {
    std::uint64_t h = 0;
    for (auto& n : nodes) {
      for (const auto& sc : n.daemon->shardCounters()) h += sc.replicaHits;
    }
    return h;
  }();
  for (int i = 0; i < 200; ++i) {
    const std::string file = fedConfig(hot).codec.outputFile(
        residentSteps[static_cast<std::size_t>(i) % residentSteps.size()]);
    ASSERT_TRUE(session->acquire({file}).isOk()) << "acquire " << i;
    ASSERT_TRUE(session->release(file).isOk()) << "release " << i;
  }
  std::uint64_t hitsAfter = 0;
  for (auto& n : nodes) {
    for (const auto& sc : n.daemon->shardCounters()) {
      hitsAfter += sc.replicaHits;
    }
  }
  EXPECT_GT(hitsAfter, hitsBefore)
      << "p2c spread never served a read off a lease";

  session->finalize();
  router->drainPool();
  for (auto& n : nodes) {
    n.fleet.reset();
    n.daemon.reset();
  }
}

TEST(FederationTest, EvictionRevokesLeaseBeforeStepMutates) {
  // A context whose quota holds only 4 steps, on a 3-node ring with
  // R = 2: seeding a 5th step forces an eviction at the owner, which
  // must revoke the victim's lease (generation-fenced) BEFORE the step
  // is erased — afterwards no replica may serve the victim, while the
  // surviving steps keep serving.
  const std::string tag = "evict";
  const cluster::Ring ring = fullRing(tag);
  auto cfg = fedConfig(0);
  cfg.cacheQuotaBytes = 4 * cfg.outputStepBytes;

  std::vector<Node> nodes;
  for (int i = 0; i < kNodes; ++i) {
    Node node;
    Daemon::Options options;
    options.shards = 2;
    options.workers = 2;
    options.nodeId = "dv" + std::to_string(i);
    options.ring = ring;
    options.replicas = 2;
    node.daemon = std::make_unique<Daemon>(options);
    node.store = std::make_unique<vfs::MemFileStore>();
    node.fleet = std::make_unique<simulator::ThreadedSimulatorFleet>(
        *node.daemon, *node.store, /*timeScale=*/1.0);
    ASSERT_TRUE(
        node.daemon
            ->registerContext(std::make_unique<simmodel::SyntheticDriver>(cfg))
            .isOk());
    node.fleet->registerContext(cfg);
    node.daemon->setLauncher(node.fleet.get());
    node.socketPath = socketPathFor(tag, i);
    ASSERT_TRUE(node.daemon->listen(node.socketPath).isOk());
    nodes.push_back(std::move(node));
  }
  const std::string ctx = cfg.name;
  const int owner = std::stoi(ring.ownerOf(ctx).id.substr(2));

  // Fill the quota exactly; both replicas must converge on the full set.
  for (StepIndex s = 0; s < 4; ++s) {
    ASSERT_TRUE(nodes[owner].daemon->seedAvailableStep(ctx, s).isOk());
  }
  for (int n = 0; n < kNodes; ++n) {
    if (n == owner) continue;
    ASSERT_TRUE(pollUntil([&] {
      const auto view = replicaLeaseOf(nodes[n], ctx);
      return view && view->steps == 4;
    })) << "lease propagation stalled on dv"
        << n;
  }
  const std::uint64_t genBefore = replicaLeaseOf(
      nodes[owner == 0 ? 1 : 0], ctx)->generation;

  // Sanity: a replica serves a leased resident step locally (packed
  // outcome = ok + available).
  const int replicaIdx = owner == 0 ? 1 : 0;
  EXPECT_EQ(probeReplicaOpen(nodes[replicaIdx].socketPath, ctx,
                             cfg.codec.outputFile(0)),
            1);

  // The mutation: one step over quota evicts a victim at the owner.
  ASSERT_TRUE(nodes[owner].daemon->seedAvailableStep(ctx, 4).isOk());
  StepIndex victim = -1;
  int present = 0;
  for (StepIndex s = 0; s <= 4; ++s) {
    if (nodes[owner].daemon->isAvailable(ctx, s)) {
      ++present;
    } else {
      victim = s;
    }
  }
  ASSERT_EQ(present, 4) << "quota did not evict exactly one step";
  ASSERT_GE(victim, 0);

  // Revocation lands with a bumped generation, and the revoke-before-
  // mutate ordering means: once the victim is gone at the owner, NO
  // replica serves it — the probe must answer kNotLeased, never stale
  // data. The grant for step 4 arrives under the new generation.
  for (int n = 0; n < kNodes; ++n) {
    if (n == owner) continue;
    ASSERT_TRUE(pollUntil([&] {
      const auto view = replicaLeaseOf(nodes[n], ctx);
      return view && view->generation > genBefore && view->steps == 4;
    })) << "revocation did not reach dv"
        << n;
    EXPECT_EQ(probeReplicaOpen(nodes[n].socketPath, ctx,
                               cfg.codec.outputFile(victim)),
              static_cast<std::int64_t>(StatusCode::kNotLeased) * 2)
        << "dv" << n << " served the evicted step";
    EXPECT_EQ(probeReplicaOpen(nodes[n].socketPath, ctx,
                               cfg.codec.outputFile(4)),
              1)
        << "dv" << n << " lost the surviving lease";
  }

  // The owner's revoke ledger drains once both replicas ack.
  EXPECT_TRUE(pollUntil([&] {
    return nodes[owner].daemon->federationCounters().contextsRevoking == 0;
  })) << "revocation acks never drained";
  EXPECT_GE(nodes[owner].daemon->federationCounters().leaseRevokesSent, 2u);

  // The victim is still reachable through the front door: a routed
  // client re-simulates it at the owner, transparently.
  auto router = dvlib::NodeRouter::overUnixSockets(ring);
  auto client = dvlib::SimFSClient::connect(router, ctx);
  ASSERT_TRUE(client.isOk());
  ASSERT_TRUE((*client)->acquire({cfg.codec.outputFile(victim)}).isOk());
  (*client)->finalize();
  router->drainPool();

  for (auto& n : nodes) {
    n.fleet.reset();
    n.daemon.reset();
  }
}

TEST(FederationTest, ReplicaDeathConvergesToOwner) {
  // A replica daemon dying mid-workload must not fail a single acquire:
  // the session's spread marks the dead link and retargets in-flight and
  // future batches at the owner.
  const std::string tag = "rdeath";
  const cluster::Ring ring = fullRing(tag);
  auto nodes = startCluster(tag, ring, /*replicas=*/2);
  const std::string ctx = contextName(0);
  const auto cfg = fedConfig(0);
  const int owner = std::stoi(ring.ownerOf(ctx).id.substr(2));

  constexpr StepIndex kResident = 8;
  for (StepIndex s = 0; s < kResident; ++s) {
    ASSERT_TRUE(nodes[owner].daemon->seedAvailableStep(ctx, s).isOk());
  }
  for (int n = 0; n < kNodes; ++n) {
    if (n == owner) continue;
    ASSERT_TRUE(pollUntil([&] {
      const auto view = replicaLeaseOf(nodes[n], ctx);
      return view && view->steps == kResident;
    })) << "lease propagation stalled on dv"
        << n;
  }

  auto router = dvlib::NodeRouter::overUnixSockets(ring);
  auto connected = dvlib::Session::connect(router, ctx);
  ASSERT_TRUE(connected.isOk());
  std::shared_ptr<dvlib::Session> session = std::move(*connected);
  ASSERT_TRUE(session->acquire({cfg.codec.outputFile(0)}).isOk());
  ASSERT_TRUE(session->release(cfg.codec.outputFile(0)).isOk());
  ASSERT_TRUE(pollUntil([&] { return session->replicaEndpoints() == 2; }))
      << "replica links did not come up";

  const int dying = owner == 0 ? 1 : 0;
  for (int i = 0; i < 100; ++i) {
    if (i == 30) {
      // Kill one replica mid-stream: its socket goes away with it.
      nodes[dying].fleet.reset();
      nodes[dying].daemon.reset();
    }
    const std::string file = cfg.codec.outputFile(
        static_cast<StepIndex>(i % static_cast<int>(kResident)));
    ASSERT_TRUE(session->acquire({file}).isOk()) << "acquire " << i;
    ASSERT_TRUE(session->release(file).isOk()) << "release " << i;
  }
  // The spread converged: the dead link is out of the rotation.
  EXPECT_LE(session->replicaEndpoints(), 1u);
  // The owner still holds every resident step.
  for (StepIndex s = 0; s < kResident; ++s) {
    EXPECT_TRUE(nodes[owner].daemon->isAvailable(ctx, s));
  }

  session->finalize();
  router->drainPool();
  for (auto& n : nodes) {
    n.fleet.reset();
    n.daemon.reset();
  }
}

/// One admin-plane request/reply over a fresh Unix socket (the in-test
/// equivalent of `simfsctl join`'s kRingPropose / kRingCommit sends).
Result<msg::Message> adminCall(const std::string& socketPath,
                               msg::Message req) {
  auto conn = msg::unixSocketConnect(socketPath);
  if (!conn) return conn.status();
  std::mutex mu;
  std::condition_variable cv;
  std::optional<msg::Message> got;
  (*conn)->setHandler([&](msg::Message&& m) {
    std::lock_guard lock(mu);
    got = std::move(m);
    cv.notify_all();
  });
  req.requestId = 1;
  SIMFS_RETURN_IF_ERROR((*conn)->send(req));
  std::unique_lock lock(mu);
  if (!cv.wait_for(lock, std::chrono::seconds(5),
                   [&] { return got.has_value(); })) {
    return errTimedOut("no admin reply");
  }
  (*conn)->close();
  return std::move(*got);
}

TEST(FederationTest, JoinMidFloodMatchesStaticFourNodeOracle) {
  // A 3-node ring takes a client flood; mid-flood a 4th daemon (started
  // on its own self-ring, owning nothing anyone routes to) joins through
  // the two-phase admin path. The moving contexts' resident state streams
  // to dv3 before the commit; afterwards every op on a moved context is
  // redirected and served by dv3. Acceptance: ZERO failed client ops, and
  // the final owners' availability is exactly the single-node oracle —
  // i.e. indistinguishable from a ring that was 4 nodes all along.
  const std::string tag = "elastic";
  const cluster::Ring ring3 = fullRing(tag);
  auto nodes = startCluster(tag, ring3);
  const std::string dv3Sock = socketPathFor(tag, 3);
  {
    Node extra;
    Daemon::Options options;
    options.shards = 2;
    options.workers = 2;
    options.nodeId = "dv3";
    options.ring = cluster::Ring::make({{"dv3", dv3Sock}}, 1).value();
    extra.daemon = std::make_unique<Daemon>(options);
    extra.store = std::make_unique<vfs::MemFileStore>();
    extra.fleet = std::make_unique<simulator::ThreadedSimulatorFleet>(
        *extra.daemon, *extra.store, /*timeScale=*/1.0);
    for (int c = 0; c < kContexts; ++c) {
      const auto cfg = fedConfig(c);
      ASSERT_TRUE(extra.daemon
                      ->registerContext(
                          std::make_unique<simmodel::SyntheticDriver>(cfg))
                      .isOk());
      extra.fleet->registerContext(cfg);
    }
    extra.daemon->setLauncher(extra.fleet.get());
    extra.socketPath = dv3Sock;
    ASSERT_TRUE(extra.daemon->listen(dv3Sock).isOk());
    nodes.push_back(std::move(extra));
  }
  const auto ring4 =
      ring3.withNode({"dv3", dv3Sock}, ring3.version() + 1).value();
  std::vector<std::string> ctxNames;
  for (int i = 0; i < kContexts; ++i) ctxNames.push_back(contextName(i));
  const auto moved = cluster::Ring::movedContexts(ring3, ring4, ctxNames);
  ASSERT_FALSE(moved.empty()) << "a 4th node must attract some contexts";

  // The flood: wave 1 runs against the 3-ring, then each client parks
  // until the membership change committed and runs wave 2 on its still-
  // bound session — the op lands on the old owner, is redirected, and
  // the client rebinds + resends under the same requestId.
  std::atomic<int> failures{0};
  std::atomic<int> wave1Done{0};
  std::atomic<bool> committed{false};
  auto sharedRouter = dvlib::NodeRouter::overUnixSockets(ring3);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      const int ctx = c % kContexts;
      auto client = dvlib::SimFSClient::connect(sharedRouter, contextName(ctx));
      if (!client.isOk()) {
        ++failures;
        ++wave1Done;
        return;
      }
      const auto steps = accessesOf(c);
      const std::size_t half = steps.size() / 2;
      const auto run = [&](std::size_t from, std::size_t to) {
        for (std::size_t k = from; k < to; ++k) {
          const std::string file = fedConfig(ctx).codec.outputFile(steps[k]);
          if (!(*client)->acquire({file}).isOk() ||
              !(*client)->release(file).isOk()) {
            ++failures;
            return false;
          }
        }
        return true;
      };
      const bool wave1Ok = run(0, half);
      ++wave1Done;
      if (wave1Ok) {
        while (!committed.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        run(half, steps.size());
      }
      (*client)->finalize();
    });
  }
  while (wave1Done.load() < kClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The two-phase change, driven exactly like `simfsctl join`: propose
  // through dv0 (which relays to old ∪ new), drain, commit.
  msg::Message propose;
  propose.type = msg::MsgType::kRingPropose;
  propose.files = ring4.encodeEntries();
  propose.intArg = static_cast<std::int64_t>(ring4.version());
  auto proposeAck = adminCall(nodes[0].socketPath, propose);
  ASSERT_TRUE(proposeAck.isOk());
  ASSERT_EQ(proposeAck->type, msg::MsgType::kRingProposeAck);
  ASSERT_EQ(proposeAck->code, 0) << proposeAck->text;
  EXPECT_GT(proposeAck->intArg2, 0) << "dv0 must report moving contexts";
  const auto drainDeadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  const auto inflightEverywhere = [&] {
    std::size_t n = 0;
    for (auto& node : nodes) {
      n += node.daemon->federationCounters().handoffsInflight;
    }
    return n;
  };
  while (inflightEverywhere() > 0 &&
         std::chrono::steady_clock::now() < drainDeadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(inflightEverywhere(), 0u) << "handoffs did not drain";
  msg::Message commit;
  commit.type = msg::MsgType::kRingCommit;
  commit.files = ring4.encodeEntries();
  commit.intArg = static_cast<std::int64_t>(ring4.version());
  auto commitAck = adminCall(nodes[0].socketPath, commit);
  ASSERT_TRUE(commitAck.isOk());
  ASSERT_EQ(commitAck->type, msg::MsgType::kRingCommitAck);
  ASSERT_EQ(commitAck->code, 0) << commitAck->text;
  // The commit relay fans out async: wave 2 starts once every member
  // adopted v3, so no old owner keeps serving a moved context.
  const auto adoptDeadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  const auto allAdopted = [&] {
    for (auto& node : nodes) {
      if (node.daemon->ring().version() != ring4.version()) return false;
    }
    return true;
  };
  while (!allAdopted() &&
         std::chrono::steady_clock::now() < adoptDeadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(allAdopted()) << "commit relay did not converge";
  committed.store(true);
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0) << "elastic join must lose zero client ops";

  // Every real mover's transfer committed (dv3's self-ring mirage adds
  // trivial commits on top, hence >=); nothing is still in flight.
  std::uint64_t committedSum = 0;
  for (auto& node : nodes) {
    const auto fed = node.daemon->federationCounters();
    committedSum += fed.handoffsCommitted;
    EXPECT_EQ(fed.handoffsInflight, 0u);
  }
  EXPECT_GE(committedSum, moved.size());

  quiesce(nodes);
  // The oracle: the final owner under ring4 serves EXACTLY the steps a
  // single-node replay of the same accesses produced — handed-off state
  // plus post-commit production, byte-equivalent to a static 4-ring.
  // (Delta frames ride the maintenance tick, so poll before asserting.)
  const auto expected = replaySingleNode();
  const auto ownerHasOracle = [&](int i) {
    const int owner = std::stoi(ring4.ownerOf(contextName(i)).id.substr(2));
    const auto steps = fedConfig(i).geometry.numOutputSteps();
    for (StepIndex s = 0; s < steps; ++s) {
      if (nodes[owner].daemon->isAvailable(contextName(i), s) !=
          (expected[i].count(s) > 0)) {
        return false;
      }
    }
    return true;
  };
  const auto settleDeadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  const auto settled = [&] {
    for (int i = 0; i < kContexts; ++i) {
      if (!ownerHasOracle(i)) return false;
    }
    return true;
  };
  while (!settled() &&
         std::chrono::steady_clock::now() < settleDeadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (int i = 0; i < kContexts; ++i) {
    const int owner = std::stoi(ring4.ownerOf(contextName(i)).id.substr(2));
    ASSERT_FALSE(expected[i].empty()) << "oracle produced nothing?";
    const auto steps = fedConfig(i).geometry.numOutputSteps();
    for (StepIndex s = 0; s < steps; ++s) {
      EXPECT_EQ(nodes[owner].daemon->isAvailable(contextName(i), s),
                expected[i].count(s) > 0)
          << "context " << i << " step " << s << " final owner dv" << owner;
      // Nobody anywhere invented a step the oracle never produced; old
      // owners may keep a residue subset, which is harmless (they
      // redirect instead of serving it).
      for (std::size_t n = 0; n < nodes.size(); ++n) {
        if (expected[i].count(s) == 0) {
          EXPECT_FALSE(nodes[n].daemon->isAvailable(contextName(i), s))
              << "dv" << n << " invented context " << i << " step " << s;
        }
      }
    }
  }

  for (auto& n : nodes) {
    n.fleet.reset();
    n.daemon.reset();
  }
}

TEST(FederationTest, StaleEpochHandoffIsFenced) {
  // The epoch fence in one frame: a kContextHandoff tagged with an epoch
  // BELOW the receiver's committed ring version is rejected outright with
  // kFailedPrecondition — a crashed-and-recovered old owner that missed a
  // commit cannot scribble authority it no longer has. A frame for a
  // context the receiver does not own under the committed ring bounces
  // the same way.
  const std::string tag = "fence";
  const cluster::Ring ring = fullRing(tag);  // version 2
  auto nodes = startCluster(tag, ring);

  msg::Message stale;
  stale.type = msg::MsgType::kContextHandoff;
  stale.context = contextName(0);
  stale.intArg = 1;  // epoch 1 < committed version 2
  stale.text = "dv9";
  stale.ints = {0, 1, 2};
  auto reply = adminCall(nodes[0].socketPath, stale);
  ASSERT_TRUE(reply.isOk());
  ASSERT_EQ(reply->type, msg::MsgType::kContextHandoffAck);
  EXPECT_EQ(static_cast<StatusCode>(reply->code),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(reply->intArg, 1);

  // Current epoch, but aimed at a non-owner: equally fenced.
  int nonOwner = -1;
  for (int n = 0; n < kNodes && nonOwner < 0; ++n) {
    if (ring.ownerOf(contextName(0)).id != "dv" + std::to_string(n)) {
      nonOwner = n;
    }
  }
  ASSERT_GE(nonOwner, 0);
  msg::Message misaimed = stale;
  misaimed.intArg = static_cast<std::int64_t>(ring.version());
  auto bounced = adminCall(nodes[nonOwner].socketPath, misaimed);
  ASSERT_TRUE(bounced.isOk());
  EXPECT_EQ(static_cast<StatusCode>(bounced->code),
            StatusCode::kFailedPrecondition);

  // Neither frame touched any state.
  for (auto& n : nodes) {
    EXPECT_FALSE(n.daemon->isAvailable(contextName(0), 0));
    EXPECT_FALSE(n.daemon->isAvailable(contextName(0), 1));
  }
  for (auto& n : nodes) {
    n.fleet.reset();
    n.daemon.reset();
  }
}

TEST(NodeRouterTest, PoolsUnboundConnectionsPerEndpoint) {
  // The dialer counts dials; checkout after checkin must reuse.
  std::atomic<int> dials{0};
  std::vector<std::unique_ptr<msg::Transport>> serverEnds;
  std::mutex serverMutex;
  auto router = std::make_shared<dvlib::NodeRouter>(
      cluster::Ring::make({{"a", "ep-a"}, {"b", "ep-b"}}).value(),
      [&](const std::string&) -> Result<std::unique_ptr<msg::Transport>> {
        ++dials;
        auto [server, client] = msg::makeInProcPair();
        std::lock_guard lock(serverMutex);
        serverEnds.push_back(std::move(server));
        return std::move(client);
      });

  auto first = router->checkout("ep-a");
  ASSERT_TRUE(first.isOk());
  EXPECT_EQ(dials.load(), 1);
  router->checkin("ep-a", std::move(*first));
  auto second = router->checkout("ep-a");
  ASSERT_TRUE(second.isOk());
  EXPECT_EQ(dials.load(), 1) << "pooled transport not reused";
  auto other = router->checkout("ep-b");
  ASSERT_TRUE(other.isOk());
  EXPECT_EQ(dials.load(), 2) << "pool must be per-endpoint";

  // A transport whose peer died while pooled is discarded, not reused.
  router->checkin("ep-a", std::move(*second));
  {
    std::lock_guard lock(serverMutex);
    serverEnds.clear();  // closes every server end
  }
  auto third = router->checkout("ep-a");
  ASSERT_TRUE(third.isOk());
  EXPECT_EQ(dials.load(), 3) << "stale pooled transport was handed out";
  router->drainPool();
}

TEST(NodeRouterTest, AdoptRingKeepsNewestVersion) {
  auto v2 = cluster::Ring::make({{"a", "/a"}, {"b", "/b"}}, 2).value();
  auto v3 = cluster::Ring::make({{"a", "/a"}, {"c", "/c"}}, 3).value();
  auto router = std::make_shared<dvlib::NodeRouter>(
      v2, [](const std::string&) -> Result<std::unique_ptr<msg::Transport>> {
        return errUnavailable("no dial in this test");
      });
  EXPECT_FALSE(router->adoptRing(v2));  // same version, same table: no-op
  EXPECT_TRUE(router->adoptRing(v3));
  EXPECT_EQ(router->ringSnapshot().version(), 3u);
  EXPECT_FALSE(router->adoptRing(v2));  // stale: ignored
  EXPECT_NE(router->node("c").isOk(), false);
  EXPECT_FALSE(router->node("b").isOk());
  // Same version but DIFFERENT membership is authoritative (the daemon's
  // table supersedes a wrong client seed) — without this, a client seeded
  // with a bad same-version ring could never converge on the table every
  // redirect carries.
  auto v3fixed = cluster::Ring::make({{"a", "/a"}, {"d", "/d"}}, 3).value();
  EXPECT_TRUE(router->adoptRing(v3fixed));
  EXPECT_TRUE(router->node("d").isOk());
  EXPECT_FALSE(router->node("c").isOk());
  // A newer version with IDENTICAL membership fast-forwards silently:
  // the stored version advances (so stale-update checks keep working)
  // but adoptRing reports "nothing changed" — no rebind storm on the
  // pure version bumps an elastic commit fans out to every client.
  const auto v4 =
      cluster::Ring::fromEntries(v3fixed.encodeEntries(), 4).value();
  EXPECT_FALSE(router->adoptRing(v4));
  EXPECT_EQ(router->ringSnapshot().version(), 4u);
  EXPECT_TRUE(router->node("d").isOk());
}

}  // namespace
}  // namespace simfs::dv
