// Unit tests for the DataVirtualizer core (Sec. III), driven directly with
// a mock launcher — no engine, no threads: every event is an explicit call.
#include "dv/data_virtualizer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

namespace simfs::dv {
namespace {

using simmodel::ContextConfig;
using simmodel::PerfModel;
using simmodel::StepGeometry;

/// Records launches/kills; the test fires the simulator events manually.
class MockLauncher final : public SimLauncher {
 public:
  struct Launch {
    SimJobId id;
    simmodel::JobSpec spec;
  };
  void launch(SimJobId job, const simmodel::JobSpec& spec) override {
    launches.push_back({job, spec});
  }
  void kill(SimJobId job) override { kills.push_back(job); }

  std::vector<Launch> launches;
  std::vector<SimJobId> kills;
};

ContextConfig testConfig() {
  ContextConfig cfg;
  cfg.name = "ctx";
  cfg.geometry = StepGeometry(1, 4, 64);  // 64 steps, intervals of 4
  cfg.outputStepBytes = 10;
  cfg.cacheQuotaBytes = 80;  // 8 cached steps
  cfg.policy = simmodel::PolicyKind::kLru;
  cfg.sMax = 4;
  cfg.prefetchEnabled = false;  // prefetching covered in scenario tests
  cfg.perf = PerfModel(4, vtime::kSecond, 2 * vtime::kSecond);
  return cfg;
}

class DvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dv_ = std::make_unique<DataVirtualizer>(clock_);
    dv_->setLauncher(&launcher_);
    dv_->setNotifyFn([this](ClientId c, const std::string& f, const Status& s) {
      notifications_.push_back({c, f, s});
    });
    dv_->setEvictFn([this](const std::string& ctx, const std::string& f) {
      evicted_.push_back(f);
      (void)ctx;
    });
    ASSERT_TRUE(dv_->registerContext(
                       std::make_unique<simmodel::SyntheticDriver>(testConfig()))
                    .isOk());
  }

  /// Simulates the fleet producing every step of a launched job.
  void produceAll(const MockLauncher::Launch& l) {
    dv_->simulationStarted(l.id);
    const auto codec = testConfig().codec;
    for (StepIndex s = l.spec.startStep; s <= l.spec.stopStep; ++s) {
      dv_->simulationFileWritten(l.id, codec.outputFile(s));
    }
    dv_->simulationFinished(l.id, Status::ok());
  }

  struct Notification {
    ClientId client;
    std::string file;
    Status status;
  };

  ManualClock clock_;
  MockLauncher launcher_;
  std::unique_ptr<DataVirtualizer> dv_;
  std::vector<Notification> notifications_;
  std::vector<std::string> evicted_;
};

TEST_F(DvTest, ConnectUnknownContextFails) {
  EXPECT_FALSE(dv_->clientConnect("nope").isOk());
}

TEST_F(DvTest, DuplicateContextRejected) {
  EXPECT_EQ(dv_->registerContext(
                   std::make_unique<simmodel::SyntheticDriver>(testConfig()))
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(DvTest, MissLaunchesDemandJobOverRestartInterval) {
  const auto client = dv_->clientConnect("ctx").value();
  const auto res = dv_->clientOpen(client, "out_0000000005.snc");
  EXPECT_TRUE(res.status.isOk());
  EXPECT_FALSE(res.available);
  ASSERT_EQ(launcher_.launches.size(), 1u);
  // Step 5 lives in interval [4, 8]: restart r1 to r2 (boundary included).
  EXPECT_EQ(launcher_.launches[0].spec.startStep, 4);
  EXPECT_EQ(launcher_.launches[0].spec.stopStep, 8);
  EXPECT_EQ(dv_->stats().misses, 1u);
  EXPECT_EQ(dv_->runningJobs("ctx"), 1);
}

TEST_F(DvTest, EstimatedWaitPositiveForMiss) {
  const auto client = dv_->clientConnect("ctx").value();
  const auto res = dv_->clientOpen(client, "out_0000000005.snc");
  // alpha=2s + (5-4+1)*1s = 4s estimated.
  EXPECT_EQ(res.estimatedWait, 4 * vtime::kSecond);
}

TEST_F(DvTest, FileWrittenNotifiesWaiterAndTakesReference) {
  const auto client = dv_->clientConnect("ctx").value();
  (void)dv_->clientOpen(client, "out_0000000005.snc");
  produceAll(launcher_.launches[0]);
  ASSERT_EQ(notifications_.size(), 1u);
  EXPECT_EQ(notifications_[0].client, client);
  EXPECT_EQ(notifications_[0].file, "out_0000000005.snc");
  EXPECT_TRUE(notifications_[0].status.isOk());
  EXPECT_TRUE(dv_->isAvailable("ctx", 5));
  EXPECT_EQ(dv_->runningJobs("ctx"), 0);
  // The file is referenced: release must succeed exactly once.
  EXPECT_TRUE(dv_->clientRelease(client, "out_0000000005.snc").isOk());
  EXPECT_EQ(dv_->clientRelease(client, "out_0000000005.snc").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DvTest, SecondOpenOfAvailableFileIsHit) {
  const auto client = dv_->clientConnect("ctx").value();
  (void)dv_->clientOpen(client, "out_0000000005.snc");
  produceAll(launcher_.launches[0]);
  const auto res = dv_->clientOpen(client, "out_0000000005.snc");
  EXPECT_TRUE(res.available);
  EXPECT_EQ(dv_->stats().hits, 1u);
  EXPECT_EQ(launcher_.launches.size(), 1u);  // no new job
}

TEST_F(DvTest, PendingOpenJoinsExistingJob) {
  const auto a = dv_->clientConnect("ctx").value();
  const auto b = dv_->clientConnect("ctx").value();
  (void)dv_->clientOpen(a, "out_0000000005.snc");
  (void)dv_->clientOpen(b, "out_0000000006.snc");  // same interval, pending
  EXPECT_EQ(launcher_.launches.size(), 1u);  // no second launch
  produceAll(launcher_.launches[0]);
  EXPECT_EQ(notifications_.size(), 2u);
}

TEST_F(DvTest, WholeIntervalBecomesAvailable) {
  const auto client = dv_->clientConnect("ctx").value();
  (void)dv_->clientOpen(client, "out_0000000005.snc");
  produceAll(launcher_.launches[0]);
  for (StepIndex s = 4; s <= 8; ++s) EXPECT_TRUE(dv_->isAvailable("ctx", s));
  EXPECT_FALSE(dv_->isAvailable("ctx", 3));
  EXPECT_EQ(dv_->stats().stepsProduced, 5u);
}

TEST_F(DvTest, RestartFilesAlwaysAvailable) {
  const auto client = dv_->clientConnect("ctx").value();
  const auto res = dv_->clientOpen(client, "restart_0000000002.rst");
  EXPECT_TRUE(res.status.isOk());
  EXPECT_TRUE(res.available);
  EXPECT_TRUE(launcher_.launches.empty());
}

TEST_F(DvTest, InvalidFileNameRejected) {
  const auto client = dv_->clientConnect("ctx").value();
  EXPECT_FALSE(dv_->clientOpen(client, "garbage.bin").status.isOk());
}

TEST_F(DvTest, OutOfTimelineStepRejected) {
  const auto client = dv_->clientConnect("ctx").value();
  const auto res = dv_->clientOpen(client, "out_0000009999.snc");
  EXPECT_EQ(res.status.code(), StatusCode::kOutOfRange);
}

TEST_F(DvTest, EvictionHappensBeyondQuotaAndSkipsReferenced) {
  const auto client = dv_->clientConnect("ctx").value();
  // Fill 12 steps through 3 demand jobs while holding a reference on step 5.
  (void)dv_->clientOpen(client, "out_0000000005.snc");
  produceAll(launcher_.launches[0]);  // steps 4..8
  (void)dv_->clientOpen(client, "out_0000000010.snc");
  produceAll(launcher_.launches[1]);  // steps 8..12 (8 already there)
  (void)dv_->clientOpen(client, "out_0000000015.snc");
  produceAll(launcher_.launches[2]);  // steps 12..16
  // Quota is 8 steps; we produced 13 distinct ones. Evictions must have
  // happened, but never of the referenced step 5.
  EXPECT_FALSE(evicted_.empty());
  EXPECT_TRUE(dv_->isAvailable("ctx", 5));
  for (const auto& f : evicted_) EXPECT_NE(f, "out_0000000005.snc");
  EXPECT_EQ(dv_->stats().evictions, evicted_.size());
}

TEST_F(DvTest, EvictedStepMissesAgain) {
  const auto client = dv_->clientConnect("ctx").value();
  (void)dv_->clientOpen(client, "out_0000000005.snc");
  produceAll(launcher_.launches[0]);
  (void)dv_->clientRelease(client, "out_0000000005.snc");
  // Thrash the cache far past quota.
  for (StepIndex s = 10; s <= 60; s += 5) {
    (void)dv_->clientOpen(client, testConfig().codec.outputFile(s));
    produceAll(launcher_.launches.back());
    (void)dv_->clientRelease(client, testConfig().codec.outputFile(s));
  }
  EXPECT_FALSE(dv_->isAvailable("ctx", 5));
  const auto res = dv_->clientOpen(client, "out_0000000005.snc");
  EXPECT_FALSE(res.available);  // miss again -> new job
}

TEST_F(DvTest, FailedJobPropagatesToWaiters) {
  const auto client = dv_->clientConnect("ctx").value();
  (void)dv_->clientOpen(client, "out_0000000005.snc");
  const auto job = launcher_.launches[0].id;
  dv_->simulationStarted(job);
  dv_->simulationFinished(job, errRestartFailed("node died"));
  ASSERT_EQ(notifications_.size(), 1u);
  EXPECT_EQ(notifications_[0].status.code(), StatusCode::kRestartFailed);
  EXPECT_FALSE(dv_->isAvailable("ctx", 5));
  EXPECT_EQ(dv_->runningJobs("ctx"), 0);
}

TEST_F(DvTest, DisconnectReleasesReferencesAndWaits) {
  const auto client = dv_->clientConnect("ctx").value();
  (void)dv_->clientOpen(client, "out_0000000005.snc");
  dv_->clientDisconnect(client);
  produceAll(launcher_.launches[0]);
  EXPECT_TRUE(notifications_.empty());  // no waiter left to notify
}

TEST_F(DvTest, SeedAvailableStepActsAsWarmCache) {
  ASSERT_TRUE(dv_->seedAvailableStep("ctx", 7).isOk());
  const auto client = dv_->clientConnect("ctx").value();
  const auto res = dv_->clientOpen(client, "out_0000000007.snc");
  EXPECT_TRUE(res.available);
  EXPECT_TRUE(launcher_.launches.empty());
}

TEST_F(DvTest, BitrepComparesRecordedChecksums) {
  simmodel::ChecksumMap map;
  map.record("out_0000000005.snc", 0xAA);
  ASSERT_TRUE(dv_->setChecksumMap("ctx", std::move(map)).isOk());
  const auto client = dv_->clientConnect("ctx").value();
  EXPECT_TRUE(dv_->clientBitrep(client, "out_0000000005.snc", 0xAA).value());
  EXPECT_FALSE(dv_->clientBitrep(client, "out_0000000005.snc", 0xBB).value());
  EXPECT_FALSE(dv_->clientBitrep(client, "unknown.snc", 0xAA).isOk());
}

TEST_F(DvTest, LateEventsFromFinishedJobsIgnored) {
  const auto client = dv_->clientConnect("ctx").value();
  (void)dv_->clientOpen(client, "out_0000000005.snc");
  const auto job = launcher_.launches[0];
  produceAll(job);
  const auto before = dv_->stats().stepsProduced;
  dv_->simulationFileWritten(job.id, "out_0000000006.snc");  // stale
  EXPECT_EQ(dv_->stats().stepsProduced, before);
}

TEST_F(DvTest, OpenUnknownClientFails) {
  const auto res = dv_->clientOpen(999, "out_0000000005.snc");
  EXPECT_EQ(res.status.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace simfs::dv
