// FLASH-like Sedov blast-wave virtualization (Sec. VI) with a *real*
// compute kernel: the physics::SedovSolver produces output steps and
// restart files; SimFS re-simulates missing steps bitwise-identically,
// which SIMFS_Bitrep then verifies (Sec. III-C2).
//
//   $ ./sedov_blastwave
#include "analysis/field_stats.hpp"
#include "common/checksum.hpp"
#include "dv/daemon.hpp"
#include "dvlib/simfs_client.hpp"
#include "physics/sedov.hpp"
#include "simulator/threaded_fleet.hpp"
#include "vfs/file_store.hpp"

#include <cstdio>
#include <map>

using namespace simfs;

int main() {
  // FLASH configuration of Sec. VI: one output step per timestep
  // (delta_d = 1), one restart every 20 (delta_r = 20).
  simmodel::ContextConfig cfg;
  cfg.name = "sedov";
  cfg.geometry = simmodel::StepGeometry(1, 20, 200);
  cfg.outputStepBytes = 12 * 12 * 12 * sizeof(double);
  cfg.sMax = 4;
  cfg.perf = simmodel::PerfModel(/*nodes=*/54, 4 * vtime::kMillisecond,
                                 10 * vtime::kMillisecond);

  physics::SedovConfig sedovCfg;
  sedovCfg.n = 12;

  // --- Initial simulation: write ONLY restart files + the checksum map ----
  // (this is the paper's command-line utility pass; output steps are
  // deliberately not kept).
  std::map<RestartIndex, std::string> restarts;
  simmodel::ChecksumMap checksums;
  {
    physics::SedovSolver solver(sedovCfg);
    for (StepIndex step = 0; step < 200; ++step) {
      if (step % 20 == 0) {
        restarts[step / 20] = solver.writeRestart();
      }
      solver.step();
      checksums.record(cfg.codec.outputFile(step),
                       fnv1a64(solver.writeOutputStep()));
    }
  }
  std::printf("initial run: kept %zu restart files, 0 of 200 output steps\n",
              restarts.size());

  // --- Bring up SimFS with a producer that resumes from restarts ----------
  vfs::MemFileStore store;
  dv::Daemon daemon;
  simulator::ThreadedSimulatorFleet fleet(daemon, store, /*timeScale=*/1.0);
  fleet.setProducer([&restarts, sedovCfg](const simmodel::JobSpec& spec,
                                          StepIndex step) {
    // Resume from the restart the job starts at and advance to `step`.
    // (A production driver would keep the solver alive across the job's
    // steps; re-resuming per step keeps the example self-contained.)
    const RestartIndex r = spec.startStep / 20;
    const auto it = restarts.find(r);
    SIMFS_CHECK(it != restarts.end());
    auto solver = physics::SedovSolver::fromRestart(it->second);
    SIMFS_CHECK(solver.isOk());
    solver->run(step + 1 - solver->timestep());
    return solver->writeOutputStep();
  });
  SIMFS_CHECK(
      daemon.registerContext(std::make_unique<simmodel::SyntheticDriver>(cfg))
          .isOk());
  fleet.registerContext(cfg);
  daemon.setLauncher(&fleet);
  SIMFS_CHECK(daemon.setChecksumMap("sedov", std::move(checksums)).isOk());

  // --- Analysis: mean/variance of the density field (as in the paper) -----
  auto client = dvlib::SimFSClient::connect(daemon.connectInProc(), "sedov");
  SIMFS_CHECK(client.isOk());

  std::printf("\n%-24s %10s %12s %8s\n", "output step", "mean", "variance",
              "bitrep");
  for (const StepIndex step : {5, 45, 46, 120, 199}) {
    const std::string file = cfg.codec.outputFile(step);
    SIMFS_CHECK((*client)->acquire({file}).isOk());
    const auto blob = store.read(file);
    SIMFS_CHECK(blob.isOk());
    const auto stats = analysis::analyzeField(*blob);
    SIMFS_CHECK(stats.isOk());
    // Bitwise-reproducibility check against the initial run's checksum.
    const auto match = (*client)->bitrep(file, fnv1a64(*blob));
    SIMFS_CHECK(match.isOk());
    std::printf("%-24s %10.6f %12.3e %8s\n", file.c_str(), stats->mean,
                stats->variance, *match ? "MATCH" : "DIFFERS");
    SIMFS_CHECK((*client)->release(file).isOk());
  }
  (*client)->finalize();

  const auto stats = daemon.stats();
  std::printf(
      "\nre-simulated %llu output steps across %llu jobs to serve 5 reads\n",
      static_cast<unsigned long long>(stats.stepsProduced),
      static_cast<unsigned long long>(stats.jobsLaunched));
  std::printf("sedov_blastwave: OK\n");
  return 0;
}
