// Quickstart: the smallest complete SimFS deployment.
//
// One process hosts everything: the DV daemon, a (threaded, time-scaled)
// simulator fleet, and an analysis using the paper's C API. The analysis
// acquires output steps that were never stored — SimFS re-simulates them
// on demand — then reads them through the transparent sncdf facade.
//
//   $ ./quickstart
#include "dv/daemon.hpp"
#include "dvlib/iolib.hpp"
#include "dvlib/simfs_capi.hpp"
#include "dvlib/simfs_client.hpp"
#include "simulator/threaded_fleet.hpp"
#include "vfs/file_store.hpp"

#include <cstdio>
#include <vector>

using namespace simfs;

int main() {
  // --- 1. Describe the simulation context (Sec. II-A) -----------------------
  simmodel::ContextConfig cfg;
  cfg.name = "demo";
  cfg.geometry = simmodel::StepGeometry(/*deltaD=*/1, /*deltaR=*/8,
                                        /*numTimesteps=*/256);
  cfg.outputStepBytes = 256;
  cfg.sMax = 4;
  // alpha_sim = 100 ms, tau_sim = 25 ms (already scaled for the demo).
  cfg.perf = simmodel::PerfModel(/*nodes=*/4, 25 * vtime::kMillisecond,
                                 100 * vtime::kMillisecond);

  // --- 2. Bring up the DV daemon and a simulator fleet ----------------------
  vfs::MemFileStore store;
  dv::Daemon daemon;
  simulator::ThreadedSimulatorFleet fleet(daemon, store, /*timeScale=*/1.0);
  fleet.setProducer([](const simmodel::JobSpec&, StepIndex step) {
    std::vector<double> field(32);
    for (std::size_t i = 0; i < field.size(); ++i) {
      field[i] = static_cast<double>(step) + 0.01 * static_cast<double>(i);
    }
    return dvlib::encodeField(field);
  });
  auto st = daemon.registerContext(
      std::make_unique<simmodel::SyntheticDriver>(cfg));
  SIMFS_CHECK(st.isOk());
  fleet.registerContext(cfg);
  daemon.setLauncher(&fleet);

  // --- 3. Analysis via the paper's C API ------------------------------------
  dvlib::SIMFS_SetDaemon(&daemon);
  dvlib::SIMFS_SetFileStore(&store);

  SIMFS_Context ctx = nullptr;
  if (SIMFS_Init("demo", &ctx) != SIMFS_OK) {
    std::fprintf(stderr, "SIMFS_Init failed\n");
    return 1;
  }

  const char* wanted[] = {"out_0000000042.snc", "out_0000000043.snc"};
  SIMFS_Status status{};
  std::printf("acquiring %s + %s (not on disk -> SimFS re-simulates)...\n",
              wanted[0], wanted[1]);
  if (SIMFS_Acquire(ctx, wanted, 2, &status) != SIMFS_OK) {
    std::fprintf(stderr, "SIMFS_Acquire failed (code %d)\n", status.error_code);
    return 1;
  }
  std::printf("acquired. estimated wait reported by the DV: %.0f ms\n",
              static_cast<double>(status.estimated_wait_ns) / 1e6);

  // --- 4. Read through the transparent sncdf facade --------------------------
  // (legacy analyses keep their nc_* call sites; DVLib intercepts them)
  {
    auto client = dvlib::SimFSClient::connect(daemon.connectInProc(), "demo");
    SIMFS_CHECK(client.isOk());
    dvlib::IoDispatch::instance().installAnalysis(client->get(), &store);
    int ncid = -1;
    SIMFS_CHECK(dvlib::snc_open("out_0000000042.snc", 0, &ncid) == 0);
    double buf[32];
    std::size_t n = 0;
    SIMFS_CHECK(dvlib::snc_get_var_double(ncid, buf, 32, &n) == 0);
    std::printf("out_0000000042.snc: %zu values, first = %.2f\n", n, buf[0]);
    SIMFS_CHECK(dvlib::snc_close(ncid) == 0);
    dvlib::IoDispatch::instance().reset();
  }

  SIMFS_Release(ctx, wanted[0]);
  SIMFS_Release(ctx, wanted[1]);
  SIMFS_Finalize(&ctx);
  dvlib::SIMFS_SetDaemon(nullptr);
  dvlib::SIMFS_SetFileStore(nullptr);

  const auto stats = daemon.stats();
  std::printf(
      "DV stats: %llu opens, %llu misses, %llu jobs launched, "
      "%llu output steps produced\n",
      static_cast<unsigned long long>(stats.opens),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.jobsLaunched),
      static_cast<unsigned long long>(stats.stepsProduced));
  std::printf("quickstart: OK\n");
  return 0;
}
