// Trace replay: explore how cache replacement schemes behave for your own
// workload (the tool behind the Fig. 5 study, exposed as a CLI).
//
//   $ ./trace_replay [pattern] [policy] [cachePercent]
//     pattern: forward | backward | random | ecmwf   (default forward)
//     policy:  LRU | LIRS | ARC | BCL | DCL | FIFO | RANDOM (default DCL)
//     cachePercent: 1..100                            (default 25)
#include "cache/cache.hpp"
#include "simmodel/step_geometry.hpp"
#include "trace/replay.hpp"
#include "trace/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace simfs;

int main(int argc, char** argv) {
  const std::string patternName = argc > 1 ? argv[1] : "forward";
  const std::string policyName = argc > 2 ? argv[2] : "DCL";
  const int cachePercent = argc > 3 ? std::atoi(argv[3]) : 25;
  if (cachePercent < 1 || cachePercent > 100) {
    std::fprintf(stderr, "cachePercent must be in [1, 100]\n");
    return 1;
  }

  // The Fig. 5 timeline: 4 simulated days, one output step every 5
  // minutes, one restart every 4 hours.
  constexpr StepIndex kTimeline = 1152;
  const simmodel::StepGeometry geometry(1, 48, kTimeline);

  const auto policy = simmodel::parsePolicyKind(policyName);
  if (!policy.isOk()) {
    std::fprintf(stderr, "unknown policy '%s'\n", policyName.c_str());
    return 1;
  }

  Rng rng(2026);
  trace::Trace accessTrace;
  if (patternName == "ecmwf") {
    trace::EcmwfParams params;
    params.totalAccesses = 66000;  // 10x-scaled ECMWF trace
    accessTrace = trace::makeEcmwfLikeTrace(rng, params, kTimeline);
  } else {
    const auto kind = trace::parsePatternKind(patternName);
    if (!kind.isOk()) {
      std::fprintf(stderr, "unknown pattern '%s'\n", patternName.c_str());
      return 1;
    }
    trace::PatternWorkload workload;
    workload.timelineSteps = kTimeline;
    accessTrace = trace::makeConcatenatedPattern(rng, *kind, workload);
  }

  const auto capacity = kTimeline * cachePercent / 100;
  auto cache = cache::makeCache(*policy, capacity);
  const auto result = trace::replayTrace(accessTrace, geometry, *cache);

  std::printf("SimFS trace replay\n");
  std::printf("  pattern          %s (%zu accesses)\n", patternName.c_str(),
              accessTrace.size());
  std::printf("  policy           %s\n", cache->name());
  std::printf("  cache            %lld / %lld output steps (%d%%)\n",
              static_cast<long long>(capacity),
              static_cast<long long>(kTimeline), cachePercent);
  std::printf("  hits             %llu (%.1f%%)\n",
              static_cast<unsigned long long>(result.hits),
              100.0 * result.hitRate());
  std::printf("  re-simulations   %llu\n",
              static_cast<unsigned long long>(result.restarts));
  std::printf("  simulated steps  %llu\n",
              static_cast<unsigned long long>(result.simulatedSteps));
  std::printf("  evictions        %llu\n",
              static_cast<unsigned long long>(result.evictions));
  return 0;
}
