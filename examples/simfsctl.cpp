// simfsctl — operator utility for SimFS deployments.
//
// Implements the paper's "command line utility" workflows (Sec. III-C2)
// plus daemon introspection:
//
//   simfsctl record-checksums <data-dir> <map-file>
//       Scans every file in the directory and records its checksum —
//       run this after the initial simulation so SIMFS_Bitrep has the
//       reference digests.
//
//   simfsctl verify-checksums <data-dir> <map-file>
//       Re-computes digests and reports any file that differs from the
//       recorded reference (offline bit-reproducibility audit).
//
//   simfsctl driver-info <file.drv>
//       Parses a simulation-driver description and prints the context it
//       defines (geometry, timing, naming, job template sanity check).
//
//   simfsctl ping <socket-path> [count]
//       Liveness probe: `count` (default 1) kPing round trips on one
//       negotiated connection, answered on the daemon's
//       dispatch thread (NOT through the worker pool), so it tells a
//       wedged pipeline apart from a dead process. Prints the node id
//       and the measured RTT.
//
//   simfsctl status <socket-path>
//       Queries a running DV daemon for its aggregate statistics.
//
//   simfsctl stats <socket-path>
//       Queries a running DV daemon for its per-shard serving counters
//       (queued/served requests, batch sizes, shed requests, resident
//       steps, and the autotuner feed: accesses/misses/resim_steps).
//
//   simfsctl ring <socket-path>
//       Prints the daemon's federation membership table (node ids,
//       endpoints, ring version) plus the wire protocol version each
//       member negotiates (probed with a version-carrying kPing).
//
//   simfsctl join <socket-path> <node-id> <endpoint>
//   simfsctl leave <socket-path> <node-id>
//   simfsctl drain-node <socket-path> <node-id>
//       Elastic membership: builds the successor ring (current +/- the
//       named member, version + 1) and drives the two-phase change —
//       kRingPropose through the contacted member (which relays to the
//       union of old and new membership), a drain poll until every
//       reachable member reports handoffs_inflight=0 (the owners stream
//       their moving contexts' state to the new owners meanwhile), then
//       kRingCommit, after which the new table is authoritative and
//       stale-epoch writes are fenced off. `drain-node` is `leave` under
//       the operational name: drain first, then the node can be stopped.
//
//   simfsctl cluster-status <socket-path>
//       Resolves the ring through one member, then queries every member
//       for its aggregate statistics and prints which node owns which
//       context (consistent-hash placement), which nodes hold its read
//       lease, and flags contexts with an eviction revocation in flight.
//
//   simfsctl replicas <socket-path> <context>
//       Read-replica lease view of one context: the owner, the replica
//       set R consecutive ring successors deep, the lease generation and
//       per-node leased-step counts — the operator's answer to "who can
//       serve this context's reads right now?".
//
//   simfsctl acquire <socket-path> <context> <file...>
//       Drives the vectored session API against a live daemon: ALL files
//       go out in one kOpenBatchReq, the per-file ack outcomes are
//       printed (available now / re-simulating + estimated wait /
//       failed), then the command blocks until the whole batch resolved
//       and releases the acquired references again (kCancelReq).
//
//   simfsctl ls <socket-path> [<context>]
//       The POSIX frontend's synthesized namespace without a mount: no
//       context lists the registered contexts, with one it renders the
//       directory listing (size + filename per output step) from one
//       kGeometryReq.
//
//   simfsctl stat <socket-path> <context> <file>
//       Classifies one synthesized filename: step index, size, and the
//       timestep/restart coordinates a re-simulation would start from.
#include "cluster/ring.hpp"
#include "common/checksum.hpp"
#include "common/strings.hpp"
#include "dvlib/session.hpp"
#include "msg/message.hpp"
#include "msg/transport.hpp"
#include "posix/geometry.hpp"
#include "simmodel/driver.hpp"
#include "vfs/file_store.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <thread>

using namespace simfs;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: simfsctl record-checksums <data-dir> <map-file>\n"
               "       simfsctl verify-checksums <data-dir> <map-file>\n"
               "       simfsctl driver-info <file.drv>\n"
               "       simfsctl ping <socket-path> [count]\n"
               "       simfsctl status <socket-path>\n"
               "       simfsctl stats <socket-path>\n"
               "       simfsctl ring <socket-path>\n"
               "       simfsctl join <socket-path> <node-id> <endpoint>\n"
               "       simfsctl leave <socket-path> <node-id>\n"
               "       simfsctl drain-node <socket-path> <node-id>\n"
               "       simfsctl cluster-status <socket-path>\n"
               "       simfsctl replicas <socket-path> <context>\n"
               "       simfsctl acquire <socket-path> <context> <file...>\n"
               "       simfsctl ls <socket-path> [<context>]\n"
               "       simfsctl stat <socket-path> <context> <file>\n");
  return 2;
}

int recordChecksums(const std::string& dir, const std::string& mapFile) {
  vfs::DiskFileStore store(dir);
  simmodel::ChecksumMap map;
  for (const auto& name : store.list()) {
    const auto content = store.read(name);
    if (!content) {
      std::fprintf(stderr, "skip %s: %s\n", name.c_str(),
                   content.status().toString().c_str());
      continue;
    }
    map.record(name, fnv1a64(*content));
  }
  const auto st = map.save(mapFile);
  if (!st.isOk()) {
    std::fprintf(stderr, "cannot save: %s\n", st.toString().c_str());
    return 1;
  }
  std::printf("recorded %zu checksums into %s\n", map.size(), mapFile.c_str());
  return 0;
}

int verifyChecksums(const std::string& dir, const std::string& mapFile) {
  auto map = simmodel::ChecksumMap::load(mapFile);
  if (!map) {
    std::fprintf(stderr, "cannot load %s: %s\n", mapFile.c_str(),
                 map.status().toString().c_str());
    return 1;
  }
  vfs::DiskFileStore store(dir);
  int checked = 0;
  int mismatched = 0;
  int unknown = 0;
  for (const auto& name : store.list()) {
    const auto content = store.read(name);
    if (!content) continue;
    const auto match = map->matches(name, fnv1a64(*content));
    if (!match.isOk()) {
      ++unknown;
      continue;
    }
    ++checked;
    if (!*match) {
      ++mismatched;
      std::printf("MISMATCH %s\n", name.c_str());
    }
  }
  std::printf("%d checked, %d mismatched, %d without reference\n", checked,
              mismatched, unknown);
  return mismatched == 0 ? 0 : 1;
}

int driverInfo(const std::string& path) {
  auto driver = simmodel::loadDriverFile(path);
  if (!driver) {
    std::fprintf(stderr, "cannot load driver: %s\n",
                 driver.status().toString().c_str());
    return 1;
  }
  const auto& cfg = (*driver)->config();
  std::printf("context          %s\n", cfg.name.c_str());
  std::printf("delta_d/delta_r  %lld / %lld timesteps "
              "(%lld output steps per restart interval)\n",
              static_cast<long long>(cfg.geometry.deltaD()),
              static_cast<long long>(cfg.geometry.deltaR()),
              static_cast<long long>(cfg.geometry.stepsPerRestartInterval()));
  if (cfg.geometry.numTimesteps() > 0) {
    std::printf("timeline         %lld timesteps -> %lld output steps, "
                "%lld restarts\n",
                static_cast<long long>(cfg.geometry.numTimesteps()),
                static_cast<long long>(cfg.geometry.numOutputSteps()),
                static_cast<long long>(cfg.geometry.numRestartSteps()));
  }
  std::printf("sizes            output %s, restart %s\n",
              bytes::toString(cfg.outputStepBytes).c_str(),
              bytes::toString(cfg.restartStepBytes).c_str());
  std::printf("policy           %s, cache quota %s, s_max %d\n",
              simmodel::policyKindName(cfg.policy),
              cfg.cacheQuotaBytes == 0
                  ? "unlimited"
                  : bytes::toString(cfg.cacheQuotaBytes).c_str(),
              cfg.sMax);
  const auto& perf = cfg.perf.at(0);
  std::printf("timing           tau_sim %s, alpha_sim %s at %d nodes\n",
              vtime::toString(perf.tauSim).c_str(),
              vtime::toString(perf.alphaSim).c_str(), perf.nodes);
  std::printf("naming           %s  /  %s\n", cfg.codec.outputFile(0).c_str(),
              cfg.codec.restartFile(0).c_str());
  const auto job = (*driver)->makeJob(0, cfg.geometry.stepsPerRestartInterval(),
                                      0);
  std::printf("job script       %s\n", job.script.c_str());
  return 0;
}

/// Name for the TransportChoice a kHelloAck reported (0 = the daemon
/// predates negotiation, or no offer was made).
const char* transportChoiceName(std::int64_t choice) {
  switch (static_cast<msg::TransportChoice>(choice)) {
    case msg::TransportChoice::kShm: return "shm";
    case msg::TransportChoice::kUringSocket: return "socket+uring";
    case msg::TransportChoice::kSocket: return "socket";
    case msg::TransportChoice::kLegacy: break;
  }
  return "socket (no negotiation)";
}

/// One-shot request/reply against a daemon socket; returns non-zero and
/// prints a diagnostic on connection/timeout failure.
///
/// With `transportKind` set, a simulator-role kHello precedes the request
/// so the connection can negotiate the same-host shm data plane — the
/// request then travels over whichever transport the session settled on,
/// and `transportKind` receives its name. `rttUs` (optional) receives the
/// round-trip time of the request itself, negotiation excluded.
int daemonCall(const std::string& socketPath, msg::MsgType type,
               msg::Message* reply, std::string* transportKind = nullptr,
               long long* rttUs = nullptr) {
  auto conn = msg::unixSocketConnect(socketPath);
  if (!conn) {
    std::fprintf(stderr, "cannot connect: %s\n",
                 conn.status().toString().c_str());
    return 1;
  }
  std::mutex mu;
  std::condition_variable cv;
  std::vector<msg::Message> got;
  std::size_t seen = 0;
  (*conn)->setHandler([&](msg::Message&& m) {
    std::lock_guard lock(mu);
    got.push_back(std::move(m));
    cv.notify_all();
  });
  const auto await = [&](msg::Message* out) {
    std::unique_lock lock(mu);
    if (!cv.wait_for(lock, std::chrono::seconds(5),
                     [&] { return got.size() > seen; })) {
      std::fprintf(stderr, "no reply from daemon\n");
      return false;
    }
    *out = std::move(got[seen++]);
    return true;
  };
  if (transportKind != nullptr) {
    msg::Message hello;
    hello.type = msg::MsgType::kHello;
    hello.requestId = 1;
    hello.intArg = static_cast<std::int64_t>(msg::ClientRole::kSimulator);
    if (!(*conn)->send(hello).isOk()) {
      std::fprintf(stderr, "send failed\n");
      return 1;
    }
    msg::Message ack;
    if (!await(&ack)) return 1;
    *transportKind = transportChoiceName(ack.intArg2);
  }
  msg::Message req;
  req.type = type;
  req.requestId = 2;
  const auto t0 = std::chrono::steady_clock::now();
  if (!(*conn)->send(req).isOk()) {
    std::fprintf(stderr, "send failed\n");
    return 1;
  }
  if (!await(reply)) return 1;
  if (rttUs != nullptr) {
    *rttUs = std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
  }
  (*conn)->close();
  return 0;
}

/// One-shot request/reply with a caller-built request (no hello) — the
/// admin plane: ring proposals/commits and version-probing pings.
int daemonSend(const std::string& socketPath, msg::Message req,
               msg::Message* reply) {
  auto conn = msg::unixSocketConnect(socketPath);
  if (!conn) {
    std::fprintf(stderr, "cannot connect to %s: %s\n", socketPath.c_str(),
                 conn.status().toString().c_str());
    return 1;
  }
  std::mutex mu;
  std::condition_variable cv;
  bool have = false;
  msg::Message got;
  (*conn)->setHandler([&](msg::Message&& m) {
    std::lock_guard lock(mu);
    got = std::move(m);
    have = true;
    cv.notify_all();
  });
  if (req.requestId == 0) req.requestId = 1;
  if (!(*conn)->send(req).isOk()) {
    std::fprintf(stderr, "send failed\n");
    return 1;
  }
  {
    std::unique_lock lock(mu);
    if (!cv.wait_for(lock, std::chrono::seconds(5), [&] { return have; })) {
      std::fprintf(stderr, "no reply from daemon at %s\n", socketPath.c_str());
      return 1;
    }
  }
  *reply = std::move(got);
  (*conn)->close();
  return 0;
}

/// The wire protocol version a node speaks, probed with a kPing carrying
/// this tool's ceiling in intArg2 (additive: legacy daemons echo 0).
/// Returns -1 when the node is unreachable.
std::int64_t probeProtocolVersion(const std::string& endpoint) {
  msg::Message ping;
  ping.type = msg::MsgType::kPing;
  ping.intArg2 = msg::kProtocolVersionMax;
  msg::Message pong;
  if (daemonSend(endpoint, ping, &pong) != 0 ||
      pong.type != msg::MsgType::kPong) {
    return -1;
  }
  return pong.intArg2 > 0 ? pong.intArg2 : 1;  // 0 = pre-negotiation daemon
}

int daemonPing(const std::string& socketPath, long long count) {
  auto conn = msg::unixSocketConnect(socketPath);
  if (!conn) {
    std::fprintf(stderr, "cannot connect: %s\n",
                 conn.status().toString().c_str());
    return 1;
  }
  std::mutex mu;
  std::condition_variable cv;
  std::vector<msg::Message> got;
  std::size_t seen = 0;
  (*conn)->setHandler([&](msg::Message&& m) {
    std::lock_guard lock(mu);
    got.push_back(std::move(m));
    cv.notify_all();
  });
  const auto await = [&](msg::Message* out) {
    std::unique_lock lock(mu);
    if (!cv.wait_for(lock, std::chrono::seconds(5),
                     [&] { return got.size() > seen; })) {
      std::fprintf(stderr, "no reply from daemon\n");
      return false;
    }
    *out = std::move(got[seen++]);
    return true;
  };
  msg::Message hello;
  hello.type = msg::MsgType::kHello;
  hello.requestId = 1;
  hello.intArg = static_cast<std::int64_t>(msg::ClientRole::kSimulator);
  if (!(*conn)->send(hello).isOk()) {
    std::fprintf(stderr, "send failed\n");
    return 1;
  }
  msg::Message ack;
  if (!await(&ack)) return 1;
  const std::string transport = transportChoiceName(ack.intArg2);
  long long minUs = std::numeric_limits<long long>::max();
  long long sumUs = 0;
  msg::Message reply;
  for (long long i = 0; i < count; ++i) {
    msg::Message req;
    req.type = msg::MsgType::kPing;
    req.requestId = static_cast<std::uint64_t>(2 + i);
    const auto t0 = std::chrono::steady_clock::now();
    if (!(*conn)->send(req).isOk()) {
      std::fprintf(stderr, "send failed\n");
      return 1;
    }
    if (!await(&reply)) return 1;
    if (reply.type != msg::MsgType::kPong) {
      std::fprintf(stderr, "unexpected reply type\n");
      return 1;
    }
    const long long us = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    minUs = std::min(minUs, us);
    sumUs += us;
  }
  const char* node = reply.text.empty() ? "(standalone)" : reply.text.c_str();
  if (count == 1) {
    std::printf("pong from %s: %lld us over %s\n", node, sumUs,
                transport.c_str());
  } else {
    std::printf("pong from %s: %lld pings, min %lld us, avg %lld us over %s\n",
                node, count, minUs, count > 0 ? sumUs / count : 0,
                transport.c_str());
  }
  (*conn)->close();
  return 0;
}

int daemonStatus(const std::string& socketPath) {
  msg::Message reply;
  if (const int rc = daemonCall(socketPath, msg::MsgType::kStatusReq, &reply);
      rc != 0) {
    return rc;
  }
  std::printf("daemon statistics:\n");
  for (const auto& kv : str::split(reply.text, ';')) {
    std::printf("  %s\n", kv.c_str());
  }
  std::printf("contexts:\n");
  for (const auto& name : reply.files) std::printf("  %s\n", name.c_str());
  return 0;
}

int daemonShardStats(const std::string& socketPath) {
  msg::Message reply;
  std::string transport;
  if (const int rc = daemonCall(socketPath, msg::MsgType::kShardStatsReq,
                                &reply, &transport);
      rc != 0) {
    return rc;
  }
  if (reply.type != msg::MsgType::kShardStatsAck) {
    std::fprintf(stderr, "daemon does not speak kShardStatsReq\n");
    return 1;
  }
  std::printf("transport: %s\n", transport.c_str());
  std::printf("serving pipeline (%s):\n", reply.text.c_str());
  for (const auto& line : reply.files) {
    std::printf("  ");
    for (const auto& kv : str::split(line, ';')) {
      std::printf("%-24s", kv.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

/// Fetches a daemon's ring (kRingReq); rc != 0 on failure. `replicas`
/// (optional) receives the federation's read-replica count R, carried
/// additively in intArg2 (0 from pre-replica daemons).
int fetchRing(const std::string& socketPath, cluster::Ring* ring,
              std::string* nodeId, std::size_t* replicas = nullptr) {
  msg::Message reply;
  if (const int rc = daemonCall(socketPath, msg::MsgType::kRingReq, &reply);
      rc != 0) {
    return rc;
  }
  if (reply.type != msg::MsgType::kRingUpdate) {
    std::fprintf(stderr, "daemon does not speak kRingReq\n");
    return 1;
  }
  if (nodeId != nullptr) *nodeId = reply.text;
  if (replicas != nullptr) {
    *replicas = reply.intArg2 > 0 ? static_cast<std::size_t>(reply.intArg2) : 0;
  }
  if (reply.files.empty()) {
    *ring = cluster::Ring();  // standalone daemon
    return 0;
  }
  auto parsed = cluster::Ring::fromEntries(
      reply.files, static_cast<std::uint64_t>(reply.intArg));
  if (!parsed) {
    std::fprintf(stderr, "bad ring from daemon: %s\n",
                 parsed.status().toString().c_str());
    return 1;
  }
  *ring = std::move(*parsed);
  return 0;
}

int daemonRing(const std::string& socketPath) {
  cluster::Ring ring;
  std::string nodeId;
  if (const int rc = fetchRing(socketPath, &ring, &nodeId); rc != 0) return rc;
  if (ring.empty()) {
    std::printf("standalone daemon (no ring)\n");
    return 0;
  }
  std::printf("ring version %llu, answered by %s:\n",
              static_cast<unsigned long long>(ring.version()),
              nodeId.empty() ? "-" : nodeId.c_str());
  for (const auto& n : ring.nodes()) {
    const std::int64_t proto = probeProtocolVersion(n.endpoint);
    std::string protoCol = proto < 0 ? "unreachable"
                                     : str::format("proto v%lld",
                                                   static_cast<long long>(proto));
    if (proto == 1) protoCol += " (legacy)";
    std::printf("  %-12s %-28s %s\n", n.id.c_str(), n.endpoint.c_str(),
                protoCol.c_str());
  }
  return 0;
}

/// "key=value;key=value" (the shard-stats text field) into a map.
std::map<std::string, std::string> parseKvText(const std::string& text) {
  std::map<std::string, std::string> kv;
  for (const auto& item : str::split(text, ';')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos) continue;
    kv[item.substr(0, eq)] = item.substr(eq + 1);
  }
  return kv;
}

/// One applied/granted lease as a shard-stats line reports it.
struct LeaseEntry {
  unsigned long long generation = 0;
  std::size_t steps = 0;
  bool replica = false;  // 'r' role: applied grant; 'o': granting owner
};

/// Decodes one "name:gen:steps:role" lease entry. Parsed from the RIGHT
/// so a ':' inside a context name cannot shift the numeric fields.
bool parseLeaseEntry(const std::string& entry, std::string* name,
                     LeaseEntry* out) {
  const auto c3 = entry.rfind(':');
  if (c3 == std::string::npos || c3 + 2 != entry.size()) return false;
  const auto c2 = entry.rfind(':', c3 - 1);
  if (c2 == std::string::npos) return false;
  const auto c1 = entry.rfind(':', c2 - 1);
  if (c1 == std::string::npos) return false;
  const char role = entry[c3 + 1];
  if (role != 'r' && role != 'o') return false;
  *name = entry.substr(0, c1);
  out->generation = std::strtoull(entry.c_str() + c1 + 1, nullptr, 10);
  out->steps = std::strtoull(entry.c_str() + c2 + 1, nullptr, 10);
  out->replica = role == 'r';
  return true;
}

/// Lease-plane view of one node: its shard-stats lines folded into
/// per-context lease entries plus the node-level kv text.
struct NodeLeaseView {
  bool reachable = false;
  std::map<std::string, std::string> kv;
  std::map<std::string, LeaseEntry> leases;  // by context
};

NodeLeaseView fetchLeaseView(const std::string& endpoint) {
  NodeLeaseView view;
  msg::Message reply;
  if (daemonCall(endpoint, msg::MsgType::kShardStatsReq, &reply) != 0 ||
      reply.type != msg::MsgType::kShardStatsAck) {
    return view;
  }
  view.reachable = true;
  view.kv = parseKvText(reply.text);
  for (const auto& line : reply.files) {
    const auto shardKv = parseKvText(line);
    const auto it = shardKv.find("leases");
    if (it == shardKv.end() || it->second == "-") continue;
    for (const auto& entry : str::split(it->second, ',')) {
      std::string name;
      LeaseEntry lease;
      if (parseLeaseEntry(entry, &name, &lease)) view.leases[name] = lease;
    }
  }
  return view;
}

// ------------------------------------------------------- elastic membership


/// Drives one two-phase membership change to `next`: propose through the
/// contacted member (which relays to the union of both memberships), poll
/// until every reachable member has drained its context handoffs, then
/// commit. Unreachable members are skipped with a warning — the leave of
/// a crashed node must not wait on the crashed node.
int membershipChange(const std::string& socketPath, const cluster::Ring& from,
                     const cluster::Ring& next) {
  msg::Message propose;
  propose.type = msg::MsgType::kRingPropose;
  propose.files = next.encodeEntries();
  propose.intArg = static_cast<std::int64_t>(next.version());
  msg::Message ack;
  if (daemonSend(socketPath, propose, &ack) != 0) return 1;
  if (ack.type != msg::MsgType::kRingProposeAck) {
    std::fprintf(stderr, "daemon does not speak kRingPropose\n");
    return 1;
  }
  if (ack.code != 0) {
    std::fprintf(stderr, "propose rejected: %s\n", ack.text.c_str());
    return 1;
  }
  std::printf("proposed ring v%llu: %lld context(s) changing owner\n",
              static_cast<unsigned long long>(next.version()),
              static_cast<long long>(ack.intArg2));
  for (const auto& move : ack.files) std::printf("  %s\n", move.c_str());
  // Drain poll: owners stream their moving contexts' state meanwhile;
  // the commit waits until no transfer is still in flight anywhere.
  std::set<std::string> members;  // endpoint set over old ∪ new
  for (const cluster::Ring* r : {&from, &next}) {
    for (const auto& n : r->nodes()) members.insert(n.endpoint);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    std::size_t inflight = 0;
    std::size_t unreachable = 0;
    for (const auto& endpoint : members) {
      const auto view = fetchLeaseView(endpoint);
      if (!view.reachable) {
        ++unreachable;
        continue;
      }
      const auto it = view.kv.find("handoffs_inflight");
      if (it != view.kv.end()) {
        inflight += std::strtoull(it->second.c_str(), nullptr, 10);
      }
    }
    if (inflight == 0) {
      if (unreachable > 0) {
        std::fprintf(stderr,
                     "warning: %zu member(s) unreachable during drain\n",
                     unreachable);
      }
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr,
                   "drain timed out with %zu handoff(s) still in flight; "
                   "not committing\n",
                   inflight);
      return 1;
    }
    std::printf("  draining: %zu handoff(s) in flight...\n", inflight);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  msg::Message commit;
  commit.type = msg::MsgType::kRingCommit;
  commit.files = next.encodeEntries();
  commit.intArg = static_cast<std::int64_t>(next.version());
  msg::Message commitAck;
  if (daemonSend(socketPath, commit, &commitAck) != 0) return 1;
  if (commitAck.type != msg::MsgType::kRingCommitAck || commitAck.code != 0) {
    std::fprintf(stderr, "commit rejected: %s\n", commitAck.text.c_str());
    return 1;
  }
  std::printf("ring v%llu committed (%zu member(s))\n",
              static_cast<unsigned long long>(next.version()), next.size());
  return 0;
}

int joinNode(const std::string& socketPath, const std::string& nodeId,
             const std::string& endpoint) {
  cluster::Ring ring;
  if (const int rc = fetchRing(socketPath, &ring, nullptr); rc != 0) return rc;
  if (ring.empty()) {
    std::fprintf(stderr,
                 "standalone daemon (no ring): seed a ring first "
                 "(start daemons with a membership table)\n");
    return 1;
  }
  auto next = ring.withNode(cluster::NodeInfo{nodeId, endpoint},
                            ring.version() + 1);
  if (!next) {
    std::fprintf(stderr, "cannot join: %s\n", next.status().toString().c_str());
    return 1;
  }
  return membershipChange(socketPath, ring, *next);
}

int leaveNode(const std::string& socketPath, const std::string& nodeId) {
  cluster::Ring ring;
  if (const int rc = fetchRing(socketPath, &ring, nullptr); rc != 0) return rc;
  if (ring.empty()) {
    std::fprintf(stderr, "standalone daemon (no ring): nothing to leave\n");
    return 1;
  }
  auto next = ring.withoutNode(nodeId, ring.version() + 1);
  if (!next) {
    std::fprintf(stderr, "cannot remove '%s': %s\n", nodeId.c_str(),
                 next.status().toString().c_str());
    return 1;
  }
  return membershipChange(socketPath, ring, *next);
}

int replicaStatus(const std::string& socketPath, const std::string& context) {
  cluster::Ring ring;
  std::size_t replicas = 0;
  if (const int rc = fetchRing(socketPath, &ring, nullptr, &replicas);
      rc != 0) {
    return rc;
  }
  if (ring.empty()) {
    std::printf("standalone daemon (no ring): no replica plane\n");
    return 0;
  }
  const cluster::NodeInfo owner = ring.ownerOf(context);
  const auto replicaSet = ring.replicasOf(context, replicas);
  std::printf("context   %s\n", context.c_str());
  std::printf("replicas  R=%zu%s\n", replicas,
              replicas == 0 ? " (replica reads disabled)" : "");
  std::vector<cluster::NodeInfo> probe{owner};
  probe.insert(probe.end(), replicaSet.begin(), replicaSet.end());
  for (const auto& n : probe) {
    const bool isOwner = n.id == owner.id;
    const auto view = fetchLeaseView(n.endpoint);
    if (!view.reachable) {
      std::printf("%-8s  %-12s %-28s UNREACHABLE\n",
                  isOwner ? "owner" : "replica", n.id.c_str(),
                  n.endpoint.c_str());
      continue;
    }
    const auto lease = view.leases.find(context);
    std::string detail;
    if (lease == view.leases.end()) {
      detail = "no lease";
    } else {
      detail = str::format("gen=%llu leased_steps=%zu",
                           lease->second.generation, lease->second.steps);
    }
    // An un-acked eviction revoke is only ledgered at the owner.
    const auto rev = view.kv.find("revoking");
    if (isOwner && rev != view.kv.end() && rev->second != "-") {
      for (const auto& name : str::split(rev->second, ',')) {
        if (name == context) {
          detail += "  REVOKING";
          break;
        }
      }
    }
    std::printf("%-8s  %-12s %-28s %s\n", isOwner ? "owner" : "replica",
                n.id.c_str(), n.endpoint.c_str(), detail.c_str());
  }
  return 0;
}

int clusterStatus(const std::string& socketPath) {
  cluster::Ring ring;
  std::size_t replicas = 0;
  if (const int rc = fetchRing(socketPath, &ring, nullptr, &replicas);
      rc != 0) {
    return rc;
  }
  if (ring.empty()) {
    std::printf("standalone daemon (no ring); falling back to status\n");
    return daemonStatus(socketPath);
  }
  // Contexts with an eviction revocation still in flight anywhere in the
  // federation (the owner ledgers them until every replica acks), plus
  // each node's shard-stats kv for the handoffs column below.
  std::set<std::string> revoking;
  std::map<std::string, NodeLeaseView> views;  // by node id
  for (const auto& n : ring.nodes()) {
    auto view = fetchLeaseView(n.endpoint);
    const auto rev = view.kv.find("revoking");
    if (view.reachable && rev != view.kv.end() && rev->second != "-") {
      for (const auto& name : str::split(rev->second, ',')) {
        revoking.insert(name);
      }
    }
    views[n.id] = std::move(view);
  }
  for (const auto& n : ring.nodes()) {
    msg::Message reply;
    if (daemonCall(n.endpoint, msg::MsgType::kStatusReq, &reply) != 0) {
      std::printf("%-12s %-28s UNREACHABLE\n", n.id.c_str(),
                  n.endpoint.c_str());
      continue;
    }
    // Handoff column: elastic-membership transfers this node drove
    // (inflight/committed/aborted); pre-elastic daemons report none.
    std::string handoffs;
    const auto& kv = views[n.id].kv;
    if (const auto it = kv.find("handoffs_inflight"); it != kv.end()) {
      const auto committed = kv.find("handoffs_committed");
      const auto aborted = kv.find("handoffs_aborted");
      handoffs = str::format(
          "  handoffs=%s/%s/%s", it->second.c_str(),
          committed != kv.end() ? committed->second.c_str() : "0",
          aborted != kv.end() ? aborted->second.c_str() : "0");
    }
    std::printf("%-12s %-28s %s%s\n", n.id.c_str(), n.endpoint.c_str(),
                reply.text.c_str(), handoffs.c_str());
    for (const auto& ctx : reply.files) {
      const bool owned = ring.ownerOf(ctx).id == n.id;
      bool leased = false;
      for (const auto& r : ring.replicasOf(ctx, replicas)) {
        if (r.id == n.id) {
          leased = true;
          break;
        }
      }
      std::printf("    %-20s %s%s\n", ctx.c_str(),
                  owned    ? "owner"
                  : leased ? "replica (leased reads)"
                           : "remote (redirects)",
                  owned && revoking.count(ctx) != 0 ? "  REVOKING" : "");
    }
  }
  return 0;
}

int acquireFiles(const std::string& socketPath, const std::string& context,
                 std::vector<std::string> files) {
  // Resolve the deployment first: a federated daemon answers with its
  // ring and the session routes to the context's owner (following
  // redirects); a standalone daemon is dialed directly.
  cluster::Ring ring;
  if (const int rc = fetchRing(socketPath, &ring, nullptr); rc != 0) return rc;
  Result<std::shared_ptr<dvlib::Session>> session =
      errUnavailable("unresolved");
  if (ring.empty()) {
    auto conn = msg::unixSocketConnect(socketPath);
    if (!conn) {
      std::fprintf(stderr, "cannot connect: %s\n",
                   conn.status().toString().c_str());
      return 1;
    }
    session = dvlib::Session::connect(std::move(*conn), context);
  } else {
    session =
        dvlib::Session::connect(dvlib::NodeRouter::overUnixSockets(ring),
                                context);
  }
  if (!session) {
    std::fprintf(stderr, "cannot open session on '%s': %s\n", context.c_str(),
                 session.status().toString().c_str());
    return 1;
  }
  // One kOpenBatchReq for the whole list; the ack carries the per-file
  // outcomes printed below.
  auto handle = (*session)->acquireAsync(files);
  dvlib::SimfsStatus ack;
  (void)handle.waitAck(&ack);
  std::printf("vectored acquire of %zu file(s) on '%s' (one round trip):\n",
              files.size(), context.c_str());
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto p = handle.probe(i);
    if (!p.status.isOk()) {
      std::printf("  %-28s FAILED      %s\n", files[i].c_str(),
                  p.status.toString().c_str());
    } else if (p.available) {
      std::printf("  %-28s AVAILABLE\n", files[i].c_str());
    } else {
      std::printf("  %-28s RESIMULATING  est wait %s\n", files[i].c_str(),
                  vtime::toString(p.estimatedWait).c_str());
    }
  }
  const Status done = handle.wait();
  if (!done.isOk()) {
    std::fprintf(stderr, "acquire failed: %s\n", done.toString().c_str());
    (void)handle.cancel();  // unwind whatever part did register
    (*session)->finalize();
    return 1;
  }
  std::printf("all %zu file(s) available\n", files.size());
  // The probe was not a lease: release the references again so the
  // operator command leaves nothing pinned.
  (void)handle.cancel();
  (*session)->finalize();
  return 0;
}

// --------------------------------------------------------- POSIX namespace

/// `simfsctl ls <socket> [<context>]` — the geometry RPC as an operator
/// view: no context lists the registered contexts; with one, the
/// synthesized directory listing (name + size per output step), i.e.
/// exactly what the FUSE mount / preload shim present, without mounting
/// anything.
int posixLs(const std::string& socketPath, const std::string& context) {
  const auto call = posix::socketGeometryCall(socketPath);
  if (context.empty()) {
    const auto ack = call(posix::makeGeometryReq(1, ""));
    if (!ack) {
      std::fprintf(stderr, "geometry rpc failed: %s\n",
                   ack.status().toString().c_str());
      return 1;
    }
    auto names = posix::parseContextListAck(*ack);
    if (!names) {
      std::fprintf(stderr, "bad geometry ack: %s\n",
                   names.status().toString().c_str());
      return 1;
    }
    std::sort(names->begin(), names->end());
    for (const auto& n : *names) std::printf("%s/\n", n.c_str());
    return 0;
  }
  const auto ack = call(posix::makeGeometryReq(1, context));
  if (!ack) {
    std::fprintf(stderr, "geometry rpc failed: %s\n",
                 ack.status().toString().c_str());
    return 1;
  }
  const auto g = posix::parseGeometryAck(*ack);
  if (!g) {
    std::fprintf(stderr, "bad geometry ack: %s\n",
                 g.status().toString().c_str());
    return 1;
  }
  for (StepIndex i = 0; i < g->numOutputSteps; ++i) {
    std::printf("%10llu  %s\n",
                static_cast<unsigned long long>(g->outputStepBytes),
                g->fileAt(i).c_str());
  }
  return 0;
}

/// `simfsctl stat <socket> <context> <file>` — classifies one synthesized
/// filename: its step index, size, and the timestep/restart coordinates
/// the DV would re-simulate from.
int posixStat(const std::string& socketPath, const std::string& context,
              const std::string& file) {
  const auto call = posix::socketGeometryCall(socketPath);
  const auto ack = call(posix::makeGeometryReq(1, context));
  if (!ack) {
    std::fprintf(stderr, "geometry rpc failed: %s\n",
                 ack.status().toString().c_str());
    return 1;
  }
  const auto g = posix::parseGeometryAck(*ack);
  if (!g) {
    std::fprintf(stderr, "bad geometry ack: %s\n",
                 g.status().toString().c_str());
    return 1;
  }
  StepIndex step = 0;
  if (!g->stepOf(file, &step) || step < 0 || step >= g->numOutputSteps) {
    std::fprintf(stderr, "%s: not an output step of %s\n", file.c_str(),
                 context.c_str());
    return 1;
  }
  const auto& geo = g->geometry;
  std::printf("context:   %s\n", g->context.c_str());
  std::printf("file:      %s\n", file.c_str());
  std::printf("step:      %lld\n", static_cast<long long>(step));
  std::printf("size:      %llu\n",
              static_cast<unsigned long long>(g->outputStepBytes));
  std::printf("timestep:  %lld\n",
              static_cast<long long>(geo.outputTimestep(step)));
  std::printf("restart:   %lld\n",
              static_cast<long long>(geo.restartFor(step)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "record-checksums" && argc == 4) {
    return recordChecksums(argv[2], argv[3]);
  }
  if (cmd == "verify-checksums" && argc == 4) {
    return verifyChecksums(argv[2], argv[3]);
  }
  if (cmd == "driver-info" && argc == 3) {
    return driverInfo(argv[2]);
  }
  if (cmd == "ping" && (argc == 3 || argc == 4)) {
    const long long count = argc == 4 ? std::atoll(argv[3]) : 1;
    if (count < 1) return usage();
    return daemonPing(argv[2], count);
  }
  if (cmd == "status" && argc == 3) {
    return daemonStatus(argv[2]);
  }
  if (cmd == "stats" && argc == 3) {
    return daemonShardStats(argv[2]);
  }
  if (cmd == "ring" && argc == 3) {
    return daemonRing(argv[2]);
  }
  if (cmd == "join" && argc == 5) {
    return joinNode(argv[2], argv[3], argv[4]);
  }
  if ((cmd == "leave" || cmd == "drain-node") && argc == 4) {
    return leaveNode(argv[2], argv[3]);
  }
  if (cmd == "cluster-status" && argc == 3) {
    return clusterStatus(argv[2]);
  }
  if (cmd == "replicas" && argc == 4) {
    return replicaStatus(argv[2], argv[3]);
  }
  if (cmd == "acquire" && argc >= 5) {
    return acquireFiles(argv[2], argv[3],
                        std::vector<std::string>(argv + 4, argv + argc));
  }
  if (cmd == "ls" && (argc == 3 || argc == 4)) {
    return posixLs(argv[2], argc == 4 ? argv[3] : "");
  }
  if (cmd == "stat" && argc == 5) {
    return posixStat(argv[2], argv[3], argv[4]);
  }
  return usage();
}
