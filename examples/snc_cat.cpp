// snc_cat — the facade-path oracle for the POSIX frontend smoke test.
//
//   snc_cat <socket-path> <store-dir> <context> <file>
//
// Reads one virtualized output step the "linked against DVLib" way —
// SIMFS_Init, intercepted open (non-blocking, may start a
// re-simulation), intercepted read (blocks until resident), intercepted
// close (deref) — and writes the raw bytes to stdout. The CI posix-smoke
// job pipes this next to `LD_PRELOAD=libsimfs_preload.so cat` and
// `cat` under the FUSE mount: all three must be byte-identical,
// including for cold steps the daemon has to re-simulate first.
#include "dvlib/iolib.hpp"
#include "dvlib/simfs_client.hpp"
#include "msg/transport.hpp"
#include "vfs/file_store.hpp"

#include <cstdio>
#include <string>

using namespace simfs;

int main(int argc, char** argv) {
  if (argc != 5) {
    std::fprintf(stderr,
                 "usage: snc_cat <socket-path> <store-dir> <context> <file>\n");
    return 2;
  }
  const std::string socketPath = argv[1];
  const std::string storeDir = argv[2];
  const std::string context = argv[3];
  const std::string file = argv[4];

  auto transport = msg::unixSocketConnect(socketPath);
  if (!transport) {
    std::fprintf(stderr, "snc_cat: connect: %s\n",
                 transport.status().toString().c_str());
    return 1;
  }
  auto client = dvlib::SimFSClient::connect(std::move(*transport), context);
  if (!client) {
    std::fprintf(stderr, "snc_cat: init: %s\n",
                 client.status().toString().c_str());
    return 1;
  }
  vfs::DiskFileStore store(storeDir);
  auto& io = dvlib::IoDispatch::instance();
  io.installAnalysis(client->get(), &store);

  const auto handle = io.openForRead(file);
  if (!handle) {
    std::fprintf(stderr, "snc_cat: open: %s\n",
                 handle.status().toString().c_str());
    io.reset();
    return 1;
  }
  const auto content = io.readAll(*handle);  // blocks through re-simulation
  if (!content) {
    std::fprintf(stderr, "snc_cat: read: %s\n",
                 content.status().toString().c_str());
    (void)io.close(*handle);
    io.reset();
    return 1;
  }
  if (const auto st = io.close(*handle); !st.isOk()) {
    std::fprintf(stderr, "snc_cat: close: %s\n", st.toString().c_str());
  }
  io.reset();

  std::fwrite(content->data(), 1, content->size(), stdout);
  std::fflush(stdout);
  return 0;
}
