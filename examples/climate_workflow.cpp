// Climate-archive workflow (the paper's motivating scenario, Sec. I + VI).
//
// A COSMO-like context is virtualized in the discrete-event harness:
// several analysts study a multi-day simulated archive at different times
// and in different directions, with only restart files permanently stored.
// The example prints, per analysis, the completion time with and without
// prefetching, and the aggregate DV statistics.
//
//   $ ./climate_workflow
#include "harness/scenario.hpp"

#include <cstdio>

using namespace simfs;

namespace {

simmodel::ContextConfig cosmoContext(int sMax, bool prefetch) {
  // Sec. VI: one-minute timesteps, output every 5 (delta_d = 5),
  // restart every hour (delta_r = 60); tau_sim = 3 s, alpha_sim = 13 s.
  simmodel::ContextConfig cfg;
  cfg.name = "cosmo";
  cfg.geometry = simmodel::StepGeometry(5, 60, /*4 simulated days=*/5760);
  cfg.outputStepBytes = 6 * bytes::GiB;
  cfg.cacheQuotaBytes = 0;  // storage-rich installation
  cfg.sMax = sMax;
  cfg.prefetchEnabled = prefetch;
  cfg.perf = simmodel::PerfModel(/*nodes=*/100, 3 * vtime::kSecond,
                                 13 * vtime::kSecond);
  return cfg;
}

harness::ScenarioConfig makeScenario(int sMax, bool prefetch) {
  harness::ScenarioConfig cfg;
  cfg.context = cosmoContext(sMax, prefetch);

  // Analyst 1: morning-after forward study of the first six hours.
  harness::AnalysisSpec fwd;
  fwd.label = "forward-6h";
  fwd.startTime = 0;
  fwd.steps = trace::makeForwardTrace(0, 72, 1152);
  fwd.tauCli = vtime::kSecond / 2;
  cfg.analyses.push_back(fwd);

  // Analyst 2: root-cause hunt walking backward from hour 18.
  harness::AnalysisSpec bwd;
  bwd.label = "backward-roots";
  bwd.startTime = 30 * vtime::kSecond;
  bwd.steps = trace::makeBackwardTrace(216, 72, 1152);
  bwd.tauCli = vtime::kSecond / 2;
  cfg.analyses.push_back(bwd);

  // Analyst 3: strided overview (every 4th step across day two).
  harness::AnalysisSpec strided;
  strided.label = "strided-survey";
  strided.startTime = 60 * vtime::kSecond;
  strided.steps = trace::makeForwardTrace(288, 48, 1152, /*stride=*/4);
  strided.tauCli = vtime::kSecond / 4;
  cfg.analyses.push_back(strided);

  return cfg;
}

void report(const char* title, const harness::ScenarioResult& res) {
  std::printf("%s\n", title);
  for (const auto& a : res.analyses) {
    std::printf("  %-16s completion %8.1f s  (%llu accesses, %llu stalls)\n",
                a.label.c_str(), vtime::toSeconds(a.completion()),
                static_cast<unsigned long long>(a.accesses),
                static_cast<unsigned long long>(a.stalls));
  }
  std::printf(
      "  DV: %llu demand + %llu prefetch jobs, %llu steps produced, "
      "%llu killed\n\n",
      static_cast<unsigned long long>(res.dv.demandJobs),
      static_cast<unsigned long long>(res.dv.prefetchJobs),
      static_cast<unsigned long long>(res.dv.stepsProduced),
      static_cast<unsigned long long>(res.dv.jobsKilled));
}

}  // namespace

int main() {
  std::printf("SimFS climate workflow — virtualized COSMO archive\n");
  std::printf("(three analysts, only restart files stored)\n\n");

  const auto noPrefetch = harness::runScenario(makeScenario(8, false));
  report("without prefetching:", noPrefetch);

  const auto withPrefetch = harness::runScenario(makeScenario(8, true));
  report("with prefetch agents (s_max = 8):", withPrefetch);

  double speedupSum = 0;
  for (std::size_t i = 0; i < withPrefetch.analyses.size(); ++i) {
    speedupSum += static_cast<double>(noPrefetch.analyses[i].completion()) /
                  static_cast<double>(withPrefetch.analyses[i].completion());
  }
  std::printf("mean analysis speedup from prefetching: %.2fx\n",
              speedupSum / static_cast<double>(withPrefetch.analyses.size()));
  return 0;
}
