// simfs_fuse — mounts a running DV daemon's virtualized namespace as a
// read-only filesystem:
//
//   simfs_fuse <socket-path> <mount-point> <store-dir>
//
// `<mount-point>/<context>/<file>` then behaves like a plain file tree:
// `ls` synthesizes the listing from the daemon's context geometry
// (kGeometryReq — no directory ever exists on disk), `cat` of a
// non-resident step transparently blocks while the daemon re-simulates
// it, and unmodified tools (cat, dd, h5py, ParaView loaders) work
// without relinking. `<store-dir>` must be the same directory the
// daemon's file store serves, since READ serves bytes straight from it
// after the session-level ready-wait.
//
// Mounting needs CAP_SYS_ADMIN over /dev/fuse. Exit code 3 means "FUSE
// unavailable in this environment" so smoke scripts can skip visibly
// rather than fail.
#include "common/log.hpp"
#include "posix/fuse.hpp"
#include "posix/vfs_core.hpp"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

using namespace simfs;

namespace {

posix::FuseServer* g_server = nullptr;

void onSignal(int) {
  if (g_server != nullptr) g_server->stop();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr, "usage: simfs_fuse <socket-path> <mount-point> <store-dir>\n");
    return 2;
  }
  const std::string socketPath = argv[1];
  const std::string mountPoint = argv[2];
  const std::string storeDir = argv[3];

  if (const Status st = posix::FuseServer::probe(); !st.isOk()) {
    std::fprintf(stderr, "simfs_fuse: %s\n", st.toString().c_str());
    return 3;
  }

  auto vfs = std::make_shared<posix::PosixVfs>(
      posix::PosixVfs::socketOptions(socketPath));
  posix::FuseServer server(posix::FuseServer::Options{
      mountPoint, storeDir, std::move(vfs)});
  if (const Status st = server.mount(); !st.isOk()) {
    // EPERM at mount(2) is the unprivileged-container case: same skip
    // signal as a missing /dev/fuse.
    std::fprintf(stderr, "simfs_fuse: %s\n", st.toString().c_str());
    return 3;
  }

  g_server = &server;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::printf("simfs_fuse: serving %s on %s\n", socketPath.c_str(),
              mountPoint.c_str());
  std::fflush(stdout);
  server.run();
  std::printf("simfs_fuse: unmounted\n");
  return 0;
}
