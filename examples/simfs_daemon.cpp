// simfs_daemon — a standalone DV daemon process.
//
// Serves the msg:: protocol on a Unix-domain socket, optionally as one
// member of a federated ring (see src/cluster). Every ring member is
// started with the same membership spec and its own node id; contexts are
// registered identically everywhere and the consistent-hash ring decides
// which member actually serves each one (the others redirect).
//
//   simfs_daemon --socket /tmp/dv0.sock
//                [--node dv0 --ring dv0=/tmp/dv0.sock,dv1=/tmp/dv1.sock]
//                [--contexts 4] [--shards 4] [--workers 4] [--steps 64]
//
// Contexts are synthetic ("ctx0".."ctxN-1", the stress-test geometry) and
// re-simulations run on an in-process ThreadedSimulatorFleet against an
// in-memory store — enough to drive simfsctl, the federation smoke job,
// and socket clients end to end.
//
// SIGINT/SIGTERM trigger a graceful drain: the listener closes first,
// queued requests are answered for up to SIMFS_DRAIN_MS (default 2000),
// then the pipeline stops. kill -9 is the crash case the fault tests
// cover — peers mark the node dead and clients fail over.
#include "cluster/ring.hpp"
#include "dv/daemon.hpp"
#include "simulator/threaded_fleet.hpp"
#include "vfs/file_store.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

using namespace simfs;

namespace {

std::atomic<bool> g_stop{false};

void onSignal(int) { g_stop.store(true); }

int usage() {
  std::fprintf(stderr,
               "usage: simfs_daemon --socket <path> [--node <id> --ring "
               "<id=endpoint,...>]\n"
               "                    [--contexts <n>] [--shards <n>] "
               "[--workers <n>] [--steps <n>]\n"
               "                    [--store <dir>] [--name-by-context]\n");
  return 2;
}

simmodel::ContextConfig syntheticConfig(int i, StepIndex steps,
                                        bool nameByContext) {
  simmodel::ContextConfig cfg;
  cfg.name = "ctx" + std::to_string(i);
  cfg.geometry = simmodel::StepGeometry(1, 4, steps);
  cfg.outputStepBytes = 64;
  cfg.cacheQuotaBytes = 0;
  cfg.sMax = 8;
  cfg.prefetchEnabled = false;
  cfg.perf = simmodel::PerfModel(2, 1 * vtime::kMillisecond,
                                 2 * vtime::kMillisecond);
  if (nameByContext) {
    // Per-context output prefix, so many contexts can share one flat
    // backing store (the POSIX adapters read it directly).
    cfg.codec = simmodel::FilenameCodec(cfg.name + "_out_", ".snc",
                                        cfg.name + "_restart_", ".rst", 10);
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socketPath;
  std::string nodeId;
  std::string ringSpec;
  std::string storeDir;
  bool nameByContext = false;
  int contexts = 4;
  std::size_t shards = 4;
  std::size_t workers = 4;
  StepIndex steps = 64;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return usage();
      socketPath = v;
    } else if (arg == "--node") {
      const char* v = next();
      if (v == nullptr) return usage();
      nodeId = v;
    } else if (arg == "--ring") {
      const char* v = next();
      if (v == nullptr) return usage();
      ringSpec = v;
    } else if (arg == "--contexts") {
      const char* v = next();
      if (v == nullptr) return usage();
      contexts = std::atoi(v);
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return usage();
      shards = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return usage();
      workers = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--steps") {
      const char* v = next();
      if (v == nullptr) return usage();
      steps = static_cast<StepIndex>(std::atoll(v));
    } else if (arg == "--store") {
      const char* v = next();
      if (v == nullptr) return usage();
      storeDir = v;
    } else if (arg == "--name-by-context") {
      nameByContext = true;
    } else {
      return usage();
    }
  }
  if (socketPath.empty() || contexts <= 0) return usage();
  if (nodeId.empty() != ringSpec.empty()) {
    std::fprintf(stderr, "--node and --ring must be given together\n");
    return 2;
  }

  dv::Daemon::Options options;
  options.shards = shards;
  options.workers = workers;
  if (!nodeId.empty()) {
    auto ring = cluster::Ring::parse(ringSpec, /*version=*/1);
    if (!ring) {
      std::fprintf(stderr, "bad --ring: %s\n", ring.status().toString().c_str());
      return 2;
    }
    if (ring->find(nodeId) == nullptr) {
      std::fprintf(stderr, "--node %s is not a --ring member\n", nodeId.c_str());
      return 2;
    }
    options.nodeId = nodeId;
    options.ring = std::move(*ring);
  }

  dv::Daemon daemon(options);
  // --store puts re-simulated steps on disk, where the POSIX frontend
  // (FUSE server, preload shim) reads them back directly.
  std::unique_ptr<vfs::FileStore> store;
  if (storeDir.empty()) {
    store = std::make_unique<vfs::MemFileStore>();
  } else {
    store = std::make_unique<vfs::DiskFileStore>(storeDir);
  }
  simulator::ThreadedSimulatorFleet fleet(daemon, *store, /*timeScale=*/0.001);
  for (int i = 0; i < contexts; ++i) {
    const auto cfg = syntheticConfig(i, steps, nameByContext);
    const auto st = daemon.registerContext(
        std::make_unique<simmodel::SyntheticDriver>(cfg));
    if (!st.isOk()) {
      std::fprintf(stderr, "register %s: %s\n", cfg.name.c_str(),
                   st.toString().c_str());
      return 1;
    }
    fleet.registerContext(cfg);
  }
  daemon.setLauncher(&fleet);

  if (const auto st = daemon.listen(socketPath); !st.isOk()) {
    std::fprintf(stderr, "listen %s: %s\n", socketPath.c_str(),
                 st.toString().c_str());
    return 1;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  // A federated member holds dialed peer links; a peer that dies
  // without unwinding must read as EPIPE on that link, never kill us.
  std::signal(SIGPIPE, SIG_IGN);
  std::printf("simfs_daemon ready socket=%s node=%s ring=%zu contexts=%d "
              "shards=%zu\n",
              socketPath.c_str(), nodeId.empty() ? "-" : nodeId.c_str(),
              daemon.ring().size(), contexts, daemon.shardCount());
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("simfs_daemon draining\n");
  std::fflush(stdout);
  daemon.drain();  // stop accepting, answer what's queued, then stop
  fleet.joinAll();
  return 0;
}
