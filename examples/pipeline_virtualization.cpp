// Simulation-pipeline virtualization (Sec. III-E, Fig. 6).
//
// Two contexts share one DV daemon:
//   * "coarse" — a coarse-grain simulation whose outputs are the *inputs*
//     of the fine-grain stage (in the paper, its own misses would be
//     served by copying from long-term storage);
//   * "fine"   — a fine-grain simulation whose producer actually *reads*
//     its coarse input through a DVLib client before producing each step.
//
// When the analysis asks for a missing fine-grain step, the fine
// re-simulation starts; its input read misses in turn, so the DV
// transparently launches the coarse re-simulation first — the cascade the
// paper describes.
//
//   $ ./pipeline_virtualization
#include "dv/daemon.hpp"
#include "dvlib/iolib.hpp"
#include "dvlib/simfs_client.hpp"
#include "simulator/threaded_fleet.hpp"
#include "vfs/file_store.hpp"

#include <cstdio>
#include <vector>

using namespace simfs;

namespace {

simmodel::ContextConfig makeContext(const std::string& name,
                                    const std::string& prefix,
                                    VDuration tau, VDuration alpha) {
  simmodel::ContextConfig cfg;
  cfg.name = name;
  cfg.geometry = simmodel::StepGeometry(1, 8, 256);
  cfg.outputStepBytes = 512;
  cfg.sMax = 4;
  cfg.prefetchEnabled = false;  // keep the cascade easy to read
  cfg.perf = simmodel::PerfModel(4, tau, alpha);
  cfg.codec = simmodel::FilenameCodec(prefix, ".snc", prefix + "rst_", ".rst");
  return cfg;
}

}  // namespace

int main() {
  vfs::MemFileStore store;
  dv::Daemon daemon;
  simulator::ThreadedSimulatorFleet fleet(daemon, store, /*timeScale=*/1.0);

  const auto coarse = makeContext("coarse", "coarse_",
                                  5 * vtime::kMillisecond,
                                  20 * vtime::kMillisecond);
  const auto fine = makeContext("fine", "fine_", 10 * vtime::kMillisecond,
                                30 * vtime::kMillisecond);
  SIMFS_CHECK(daemon
                  .registerContext(
                      std::make_unique<simmodel::SyntheticDriver>(coarse))
                  .isOk());
  SIMFS_CHECK(
      daemon.registerContext(std::make_unique<simmodel::SyntheticDriver>(fine))
          .isOk());
  fleet.registerContext(coarse);
  fleet.registerContext(fine);
  daemon.setLauncher(&fleet);

  // The fine-grain simulator reads its coarse-grain input on demand: one
  // DVLib client per producer call keeps the example simple. A missing
  // coarse step triggers the nested re-simulation (Fig. 6).
  fleet.setProducer([&daemon, &store, coarse, fine](
                        const simmodel::JobSpec& spec, StepIndex step) {
    if (spec.context == "coarse") {
      // Leaf stage: in the paper this stage would copy from long-term
      // storage; here it synthesizes its field directly.
      std::vector<double> field(16, 1.0 + 0.1 * static_cast<double>(step));
      return dvlib::encodeField(field);
    }
    // Fine stage: acquire the coarse input for this step, refine it.
    auto client = dvlib::SimFSClient::connect(daemon.connectInProc(), "coarse");
    SIMFS_CHECK(client.isOk());
    const std::string input = coarse.codec.outputFile(step);
    SIMFS_CHECK((*client)->acquire({input}).isOk());
    const auto blob = store.read(input);
    SIMFS_CHECK(blob.isOk());
    auto values = dvlib::decodeField(*blob);
    SIMFS_CHECK(values.isOk());
    for (auto& v : *values) v *= 2.0;  // "refinement"
    SIMFS_CHECK((*client)->release(input).isOk());
    (*client)->finalize();
    return dvlib::encodeField(*values);
  });

  // Analysis: read three fine-grain steps that were never stored.
  auto analysisClient =
      dvlib::SimFSClient::connect(daemon.connectInProc(), "fine");
  SIMFS_CHECK(analysisClient.isOk());
  for (const StepIndex step : {10, 11, 40}) {
    const std::string file = fine.codec.outputFile(step);
    std::printf("analysis: acquiring %s...\n", file.c_str());
    SIMFS_CHECK((*analysisClient)->acquire({file}).isOk());
    const auto blob = store.read(file);
    const auto values = dvlib::decodeField(*blob);
    std::printf("  got %zu refined values, first = %.2f "
                "(coarse %.2f doubled)\n",
                values->size(), (*values)[0], (*values)[0] / 2.0);
    SIMFS_CHECK((*analysisClient)->release(file).isOk());
  }
  (*analysisClient)->finalize();

  const auto stats = daemon.stats();
  std::printf(
      "\npipeline cascade: %llu jobs launched across both stages, "
      "%llu steps produced\n",
      static_cast<unsigned long long>(stats.jobsLaunched),
      static_cast<unsigned long long>(stats.stepsProduced));
  std::printf("coarse steps now on disk: %s, fine steps: %s\n",
              daemon.isAvailable("coarse", 10) ? "yes" : "no",
              daemon.isAvailable("fine", 10) ? "yes" : "no");
  std::printf("pipeline_virtualization: OK\n");
  return 0;
}
