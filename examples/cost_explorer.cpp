// Cost explorer: evaluate the Sec. V cost models for your own deployment
// parameters and find the cheapest strategy.
//
//   $ ./cost_explorer [analyses] [months] [overlapPercent] [cachePercent]
//     defaults:         100        36       50               25
#include "cost/cost_model.hpp"
#include "cost/workload.hpp"

#include <cstdio>
#include <cstdlib>

using namespace simfs;

int main(int argc, char** argv) {
  const int analysesCount = argc > 1 ? std::atoi(argv[1]) : 100;
  const double months = argc > 2 ? std::atof(argv[2]) : 36.0;
  const double overlap = (argc > 3 ? std::atof(argv[3]) : 50.0) / 100.0;
  const double cacheFraction = (argc > 4 ? std::atof(argv[4]) : 25.0) / 100.0;

  const auto scenario = cost::cosmoScenario();
  const auto rates = cost::azureRates();

  std::printf("SimFS cost explorer — COSMO production scenario (Sec. V-A)\n");
  std::printf("  %lld output steps of %.0f GiB (%.1f TiB total), "
              "tau_sim(%d) = %.0f s\n",
              static_cast<long long>(scenario.numOutputSteps),
              scenario.outputGiB, scenario.totalOutputGiB() / 1024.0,
              scenario.nodes, scenario.tauSimSeconds);
  std::printf("  rates: %.2f $/node/h compute, %.2f $/GiB/month storage\n\n",
              rates.computePerNodeHour, rates.storagePerGiBMonth);
  std::printf("  workload: %d forward analyses, %.0f%% overlap, "
              "%.0f months availability, %.0f%% cache\n\n",
              analysesCount, overlap * 100.0, months, cacheFraction * 100.0);

  Rng rng(7);
  const auto analyses = cost::makeForwardAnalyses(
      rng, analysesCount, scenario.numOutputSteps, 100, 400);

  const double onDisk = cost::onDiskCost(scenario, months, rates);
  const double inSitu = cost::inSituCost(scenario, analyses, rates);

  std::printf("%-28s %14s %16s\n", "strategy", "cost ($)", "notes");
  std::printf("%-28s %14.0f %16s\n", "on-disk", onDisk, "stores 50 TiB");
  std::printf("%-28s %14.0f %16s\n", "in-situ", inSitu, "re-runs from t=0");

  double best = std::min(onDisk, inSitu);
  const char* bestName = onDisk < inSitu ? "on-disk" : "in-situ";
  for (const double deltaR : {4.0, 8.0, 16.0}) {
    cost::VgammaConfig vcfg;
    vcfg.deltaRHours = deltaR;
    vcfg.cacheFraction = cacheFraction;
    const auto replay = cost::evaluateVgamma(scenario, analyses, overlap, vcfg);
    const double c = cost::simfsCost(
        scenario, months, deltaR, cacheFraction,
        static_cast<std::int64_t>(replay.simulatedSteps), rates);
    std::printf("%-28s %14.0f   V=%llu steps, %.0f h resim\n",
                (std::string("SimFS, dr=") + std::to_string(int(deltaR)) + "h")
                    .c_str(),
                c, static_cast<unsigned long long>(replay.simulatedSteps),
                cost::resimulationHours(
                    scenario, static_cast<std::int64_t>(replay.simulatedSteps)));
    if (c < best) {
      best = c;
      bestName = "SimFS";
    }
  }
  std::printf("\ncheapest strategy for this workload: %s (%.0f $)\n", bestName,
              best);
  return 0;
}
