// Ablation: the Sec. V-B future-work feature — online cache-size
// adaptation.
//
// A long workload of forward analyses is replayed window by window; the
// CacheAutotuner watches each window's re-simulation bill and adapts the
// cache. We compare the total cost (storage + compute over the run)
// of three fixed cache sizes against the adaptive controller starting
// from the smallest one.
#include "bench_util.hpp"
#include "cost/workload.hpp"
#include "dv/autotuner.hpp"

#include <vector>

using namespace simfs;

namespace {

struct RunCost {
  double storageDollars = 0;  ///< integrated $ for the cache, per window-month
  double computeDollars = 0;  ///< re-simulation $
  std::int64_t finalCacheSteps = 0;
};

/// Replays `windows` batches of analyses; if `tuner` is non-null the cache
/// is resized between windows. Each window counts as one "month" of
/// storage for pricing.
RunCost runWindows(const cost::Scenario& scenario,
                   const std::vector<std::vector<cost::AnalysisSpan>>& windows,
                   std::int64_t cacheSteps, dv::CacheAutotuner* tuner) {
  const auto rates = cost::azureRates();
  RunCost total;
  for (const auto& window : windows) {
    cost::VgammaConfig cfg;
    cfg.cacheFraction = static_cast<double>(cacheSteps) /
                        static_cast<double>(scenario.numOutputSteps);
    const auto replay = cost::evaluateVgamma(scenario, window, 0.5, cfg);
    total.storageDollars +=
        cost::storeCost(cacheSteps, scenario.outputGiB, 1.0, rates);
    total.computeDollars += cost::simCost(
        static_cast<std::int64_t>(replay.simulatedSteps), scenario, rates);
    if (tuner != nullptr) {
      dv::TuneWindow obs;
      obs.accesses = replay.accesses;
      obs.misses = replay.misses;
      obs.resimulatedSteps = replay.simulatedSteps;
      tuner->apply(tuner->observe(obs));
      cacheSteps = tuner->cacheSteps();
    }
  }
  total.finalCacheSteps = cacheSteps;
  return total;
}

}  // namespace

int main() {
  bench::banner("Ablation", "Online cache-size adaptation (Sec. V-B)");

  const auto scenario = cost::cosmoScenario();
  Rng rng(2027);
  // 12 monthly windows of 40 analyses each.
  std::vector<std::vector<cost::AnalysisSpan>> windows;
  for (int w = 0; w < 12; ++w) {
    windows.push_back(
        cost::makeForwardAnalyses(rng, 40, scenario.numOutputSteps, 100, 400));
  }

  std::printf("%-22s %14s %14s %14s %12s\n", "configuration", "storage($)",
              "compute($)", "total($)", "final cache");
  for (const double frac : {0.05, 0.25, 0.50}) {
    const auto cacheSteps = static_cast<std::int64_t>(
        frac * static_cast<double>(scenario.numOutputSteps));
    const auto rc = runWindows(scenario, windows, cacheSteps, nullptr);
    std::printf("fixed %3.0f%% cache      %14.0f %14.0f %14.0f %12lld\n",
                frac * 100, rc.storageDollars, rc.computeDollars,
                rc.storageDollars + rc.computeDollars,
                static_cast<long long>(rc.finalCacheSteps));
  }
  {
    dv::CacheAutotuner::Config cfg;
    cfg.scenario = scenario;
    cfg.rates = cost::azureRates();
    cfg.minCacheSteps = scenario.numOutputSteps / 20;
    dv::CacheAutotuner tuner(cfg, scenario.numOutputSteps / 20);
    const auto rc = runWindows(scenario, windows, tuner.cacheSteps(), &tuner);
    std::printf("adaptive (from 5%%)    %14.0f %14.0f %14.0f %12lld\n",
                rc.storageDollars, rc.computeDollars,
                rc.storageDollars + rc.computeDollars,
                static_cast<long long>(rc.finalCacheSteps));
  }
  std::printf(
      "\nreading: the controller starts tiny, observes the re-simulation\n"
      "bill, and buys cache while the marginal storage dollar saves more\n"
      "compute dollars — landing near the hand-tuned sweet spot without\n"
      "knowing the workload in advance.\n");
  return 0;
}
