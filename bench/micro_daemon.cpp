// Daemon serving-pipeline throughput (google-benchmark): N flood clients
// stream kOpenReq at the sharded daemon and the measured rate is acked
// requests per second end-to-end through
//
//   transport -> dispatch -> shard queue -> worker batch drain -> DvShard
//   -> buffered reply -> transport
//
// All opens hit pre-seeded steps, so this isolates the serving stack from
// simulation cost. The contexts axis is the sharding axis: contexts are
// pinned 1:1 to shards, so BM_*Flood/contexts:4 spreads the same client
// load over four independently-locked pipelines while contexts:1
// serializes it through one. A bounded in-flight window per client keeps
// queues finite without round-trip lockstep.
//
// Zero-copy pipeline accounting: every benchmark reports allocs/op
// (operator-new calls per open, across ALL threads — clients, reactor
// loops, shard workers). Clients receive acks through the MessageView
// handler, flood threads persist across iterations, and one untimed
// warm-up round fills the buffer pools / arenas / queue capacities, so
// the steady-state number must be 0 — CI gates on it.
//
// Run with --json (see bench_util.hpp) for BENCH_daemon.json; the
// items_per_second counter is ops/sec (real time).
#include "alloc_counter.hpp"
#include "bench_util.hpp"
#include "dv/daemon.hpp"
#include "msg/message.hpp"
#include "msg/transport.hpp"

#include <benchmark/benchmark.h>

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace {

using namespace simfs;

constexpr StepIndex kSeededSteps = 64;
constexpr int kOpsPerClientPerIter = 4096;
constexpr std::uint64_t kInFlightWindow = 1024;

/// The daemon never launches anything here (pure hit traffic), but the
/// seam must exist in case a request slips off the seeded range.
class NullLauncher final : public dv::SimLauncher {
 public:
  void launch(SimJobId, const simmodel::JobSpec&) override {}
  void kill(SimJobId) override {}
};

simmodel::ContextConfig benchContext(int i) {
  simmodel::ContextConfig cfg;
  cfg.name = "bench" + std::to_string(i);
  cfg.geometry = simmodel::StepGeometry(1, 16, 1 << 12);
  cfg.outputStepBytes = 1;
  cfg.cacheQuotaBytes = 1 << 16;  // far above the seeded set: no eviction
  cfg.prefetchEnabled = false;
  return cfg;
}

/// One flood client: a raw transport, a per-client ack counter and a
/// bounded-window sender. Acks arrive through the zero-copy view handler
/// and the request message is reused across sends, so a warm flood round
/// performs no client-side allocation.
struct FloodClient {
  std::unique_ptr<msg::Transport> transport;
  std::vector<std::string> files;  ///< pre-rendered hit filenames
  msg::Message request;            ///< reused kOpenReq
  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t acks = 0;
  std::uint64_t sent = 0;
  bool helloOk = false;
  bool helloDone = false;

  void attachHandler() {
    transport->setViewHandler([this](const msg::MessageView& m) {
      std::lock_guard lock(mu);
      if (m.type() == msg::MsgType::kHelloAck) {
        helloDone = true;
        helloOk = m.code() == 0;
      } else {
        ++acks;
      }
      cv.notify_all();
    });
  }

  bool hello(const std::string& context) {
    msg::Message m;
    m.type = msg::MsgType::kHello;
    m.context = context;
    m.intArg = static_cast<std::int64_t>(msg::ClientRole::kAnalysis);
    if (!transport->send(m).isOk()) return false;
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return helloDone; });
    return helloOk;
  }

  /// Streams `n` opens with at most kInFlightWindow unacked, then drains.
  void flood(int n) {
    msg::Message& m = request;
    m.type = msg::MsgType::kOpenReq;
    m.files.resize(1);
    for (int i = 0; i < n; ++i) {
      m.files[0] = files[static_cast<std::size_t>(i) % files.size()];
      if (!transport->send(m).isOk()) return;
      ++sent;
      if ((sent & 63u) == 0) {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return sent - acks <= kInFlightWindow; });
      }
    }
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return acks == sent; });
  }
};

/// Persistent flood threads: spawning a thread per iteration would both
/// skew small-iteration timings and allocate (stacks, handles) inside the
/// measured region. One pool of threads runs numbered rounds instead.
class FloodPool {
 public:
  explicit FloodPool(std::vector<std::unique_ptr<FloodClient>>& clients)
      : clients_(clients) {
    threads_.reserve(clients_.size());
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      threads_.emplace_back([this, i] { worker(i); });
    }
  }

  ~FloodPool() {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Runs one flood round on every client and blocks until all drain.
  void runRound(int opsPerClient) {
    {
      std::lock_guard lock(mu_);
      ops_ = opsPerClient;
      done_ = 0;
      ++round_;
    }
    cv_.notify_all();
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return done_ == threads_.size(); });
  }

 private:
  void worker(std::size_t index) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [&] { return stop_ || round_ != seen; });
        if (stop_) return;
        seen = round_;
      }
      clients_[index]->flood(ops_);
      {
        std::lock_guard lock(mu_);
        ++done_;
      }
      cv_.notify_all();
    }
  }

  std::vector<std::unique_ptr<FloodClient>>& clients_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t round_ = 0;
  std::size_t done_ = 0;
  int ops_ = 0;
  bool stop_ = false;
};

using ConnectFn =
    std::function<std::unique_ptr<msg::Transport>(dv::Daemon&, int client)>;

void runFloodBenchmark(benchmark::State& state, const ConnectFn& connect) {
  const int contexts = static_cast<int>(state.range(0));
  const int clients = static_cast<int>(state.range(1));

  dv::Daemon::Options options;
  options.shards = static_cast<std::size_t>(contexts);
  options.workers = static_cast<std::size_t>(contexts);
  // Provision the queues for the full in-flight load (clients x window):
  // shedding is backpressure for misbehaving producers, not a regime this
  // throughput bench wants to measure — and each shed builds an owned
  // error reply, which would show up in the allocs/op audit.
  options.queueCap = static_cast<std::size_t>(clients) * kInFlightWindow * 2;
  dv::Daemon daemon(options);
  NullLauncher launcher;
  daemon.setLauncher(&launcher);
  std::vector<simmodel::ContextConfig> cfgs;
  for (int i = 0; i < contexts; ++i) {
    cfgs.push_back(benchContext(i));
    if (!daemon
             .registerContext(
                 std::make_unique<simmodel::SyntheticDriver>(cfgs[i]))
             .isOk()) {
      state.SkipWithError("registerContext failed");
      return;
    }
    for (StepIndex s = 0; s < kSeededSteps; ++s) {
      (void)daemon.seedAvailableStep(cfgs[i].name, s);
    }
  }

  std::vector<std::unique_ptr<FloodClient>> flood;
  for (int c = 0; c < clients; ++c) {
    auto fc = std::make_unique<FloodClient>();
    fc->transport = connect(daemon, c);
    if (!fc->transport) {
      state.SkipWithError("connect failed");
      return;
    }
    const auto& cfg = cfgs[static_cast<std::size_t>(c % contexts)];
    for (StepIndex s = 0; s < kSeededSteps; ++s) {
      fc->files.push_back(cfg.codec.outputFile(s));
    }
    fc->attachHandler();
    if (!fc->hello(cfg.name)) {
      state.SkipWithError("hello failed");
      return;
    }
    flood.push_back(std::move(fc));
  }

  {
    FloodPool pool(flood);
    // Untimed warm-up round: grows the buffer pools, shard arenas, queue
    // and outbox capacities to steady state.
    pool.runRound(kOpsPerClientPerIter);
    for (auto _ : state) {
      pool.runRound(kOpsPerClientPerIter);
    }
    // Steady-state allocation audit, in a quiet region after the timed
    // loop so google-benchmark's own bookkeeping cannot leak into the
    // count: every operator-new on any thread (flood clients, reactor
    // loops, shard workers) lands in g_allocCount. CI fails the bench if
    // the socket flood's number is not 0.
    const std::uint64_t before =
        bench::g_allocCount.load(std::memory_order_relaxed);
    pool.runRound(kOpsPerClientPerIter);
    state.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(bench::g_allocCount.load(
                                std::memory_order_relaxed) -
                            before) /
        (static_cast<double>(clients) * kOpsPerClientPerIter));
  }
  state.SetItemsProcessed(state.iterations() * clients * kOpsPerClientPerIter);
  state.counters["clients"] = clients;
  state.counters["shards"] = contexts;

  for (auto& fc : flood) fc->transport->close();
}

/// In-proc transports: no socket hop, so the measured scaling is the
/// shard/worker pipeline itself.
void BM_DaemonOpenFlood(benchmark::State& state) {
  runFloodBenchmark(state, [](dv::Daemon& daemon, int) {
    return daemon.connectInProc();
  });
}

/// Unix-socket transports: adds the epoll reactor and writev batching to
/// the measured path (the daemon deployment of the paper's Fig. 4).
void BM_DaemonSocketOpenFlood(benchmark::State& state) {
  static int serial = 0;
  const std::string path = "/tmp/simfs_bench_" + std::to_string(::getpid()) +
                           "_" + std::to_string(serial++) + ".sock";
  struct Listener {
    dv::Daemon* daemon = nullptr;
    std::string path;
    bool listening = false;
  };
  Listener listener;
  listener.path = path;
  runFloodBenchmark(
      state, [&listener](dv::Daemon& daemon,
                         int) -> std::unique_ptr<msg::Transport> {
        if (!listener.listening) {
          if (!daemon.listen(listener.path).isOk()) return nullptr;
          listener.daemon = &daemon;
          listener.listening = true;
        }
        auto conn = msg::unixSocketConnect(listener.path);
        if (!conn.isOk()) return nullptr;
        return std::move(*conn);
      });
  ::unlink(path.c_str());
}

}  // namespace

// The sharding axis: 4 clients against 1 shard vs 4 shards is the
// headline scaling comparison; 1 and 16 clients bound the latency and
// oversubscription regimes.
BENCHMARK(BM_DaemonOpenFlood)
    ->ArgNames({"contexts", "clients"})
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({4, 4})
    ->Args({1, 16})
    ->Args({4, 16})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_DaemonSocketOpenFlood)
    ->ArgNames({"contexts", "clients"})
    ->Args({1, 4})
    ->Args({4, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return simfs::bench::runMicroBenchmarks(argc, argv, "BENCH_daemon.json");
}
