// Daemon serving-pipeline throughput (google-benchmark): N flood clients
// stream kOpenReq at the sharded daemon and the measured rate is acked
// requests per second end-to-end through
//
//   transport -> dispatch -> shard queue -> worker batch drain -> DvShard
//   -> buffered reply -> transport
//
// All opens hit pre-seeded steps, so this isolates the serving stack from
// simulation cost. The contexts axis is the sharding axis: contexts are
// pinned 1:1 to shards, so BM_*Flood/contexts:4 spreads the same client
// load over four independently-locked pipelines while contexts:1
// serializes it through one. A bounded in-flight window per client keeps
// queues finite without round-trip lockstep.
//
// Run with --json (see bench_util.hpp) for BENCH_daemon.json; the
// items_per_second counter is ops/sec (real time).
#include "bench_util.hpp"
#include "dv/daemon.hpp"
#include "msg/message.hpp"
#include "msg/transport.hpp"

#include <benchmark/benchmark.h>

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace {

using namespace simfs;

constexpr StepIndex kSeededSteps = 64;
constexpr int kOpsPerClientPerIter = 4096;
constexpr std::uint64_t kInFlightWindow = 1024;

/// The daemon never launches anything here (pure hit traffic), but the
/// seam must exist in case a request slips off the seeded range.
class NullLauncher final : public dv::SimLauncher {
 public:
  void launch(SimJobId, const simmodel::JobSpec&) override {}
  void kill(SimJobId) override {}
};

simmodel::ContextConfig benchContext(int i) {
  simmodel::ContextConfig cfg;
  cfg.name = "bench" + std::to_string(i);
  cfg.geometry = simmodel::StepGeometry(1, 16, 1 << 12);
  cfg.outputStepBytes = 1;
  cfg.cacheQuotaBytes = 1 << 16;  // far above the seeded set: no eviction
  cfg.prefetchEnabled = false;
  return cfg;
}

/// One flood client: a raw transport, a per-client ack counter and a
/// bounded-window sender.
struct FloodClient {
  std::unique_ptr<msg::Transport> transport;
  std::vector<std::string> files;  ///< pre-rendered hit filenames
  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t acks = 0;
  std::uint64_t sent = 0;
  bool helloOk = false;
  bool helloDone = false;

  void attachHandler() {
    transport->setHandler([this](msg::Message&& m) {
      std::lock_guard lock(mu);
      if (m.type == msg::MsgType::kHelloAck) {
        helloDone = true;
        helloOk = m.code == 0;
      } else {
        ++acks;
      }
      cv.notify_all();
    });
  }

  bool hello(const std::string& context) {
    msg::Message m;
    m.type = msg::MsgType::kHello;
    m.context = context;
    m.intArg = static_cast<std::int64_t>(msg::ClientRole::kAnalysis);
    if (!transport->send(m).isOk()) return false;
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return helloDone; });
    return helloOk;
  }

  /// Streams `n` opens with at most kInFlightWindow unacked, then drains.
  void flood(int n) {
    msg::Message m;
    m.type = msg::MsgType::kOpenReq;
    m.files.resize(1);
    for (int i = 0; i < n; ++i) {
      m.files[0] = files[static_cast<std::size_t>(i) % files.size()];
      if (!transport->send(m).isOk()) return;
      ++sent;
      if ((sent & 63u) == 0) {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return sent - acks <= kInFlightWindow; });
      }
    }
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return acks == sent; });
  }
};

using ConnectFn =
    std::function<std::unique_ptr<msg::Transport>(dv::Daemon&, int client)>;

void runFloodBenchmark(benchmark::State& state, const ConnectFn& connect) {
  const int contexts = static_cast<int>(state.range(0));
  const int clients = static_cast<int>(state.range(1));

  dv::Daemon::Options options;
  options.shards = static_cast<std::size_t>(contexts);
  options.workers = static_cast<std::size_t>(contexts);
  dv::Daemon daemon(options);
  NullLauncher launcher;
  daemon.setLauncher(&launcher);
  std::vector<simmodel::ContextConfig> cfgs;
  for (int i = 0; i < contexts; ++i) {
    cfgs.push_back(benchContext(i));
    if (!daemon
             .registerContext(
                 std::make_unique<simmodel::SyntheticDriver>(cfgs[i]))
             .isOk()) {
      state.SkipWithError("registerContext failed");
      return;
    }
    for (StepIndex s = 0; s < kSeededSteps; ++s) {
      (void)daemon.seedAvailableStep(cfgs[i].name, s);
    }
  }

  std::vector<std::unique_ptr<FloodClient>> flood;
  for (int c = 0; c < clients; ++c) {
    auto fc = std::make_unique<FloodClient>();
    fc->transport = connect(daemon, c);
    if (!fc->transport) {
      state.SkipWithError("connect failed");
      return;
    }
    const auto& cfg = cfgs[static_cast<std::size_t>(c % contexts)];
    for (StepIndex s = 0; s < kSeededSteps; ++s) {
      fc->files.push_back(cfg.codec.outputFile(s));
    }
    fc->attachHandler();
    if (!fc->hello(cfg.name)) {
      state.SkipWithError("hello failed");
      return;
    }
    flood.push_back(std::move(fc));
  }

  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(flood.size());
    for (auto& fc : flood) {
      threads.emplace_back([&fc] { fc->flood(kOpsPerClientPerIter); });
    }
    for (auto& t : threads) t.join();
  }
  state.SetItemsProcessed(state.iterations() * clients * kOpsPerClientPerIter);
  state.counters["clients"] = clients;
  state.counters["shards"] = contexts;

  for (auto& fc : flood) fc->transport->close();
}

/// In-proc transports: no socket hop, so the measured scaling is the
/// shard/worker pipeline itself.
void BM_DaemonOpenFlood(benchmark::State& state) {
  runFloodBenchmark(state, [](dv::Daemon& daemon, int) {
    return daemon.connectInProc();
  });
}

/// Unix-socket transports: adds the epoll reactor and writev batching to
/// the measured path (the daemon deployment of the paper's Fig. 4).
void BM_DaemonSocketOpenFlood(benchmark::State& state) {
  static int serial = 0;
  const std::string path = "/tmp/simfs_bench_" + std::to_string(::getpid()) +
                           "_" + std::to_string(serial++) + ".sock";
  struct Listener {
    dv::Daemon* daemon = nullptr;
    std::string path;
    bool listening = false;
  };
  Listener listener;
  listener.path = path;
  runFloodBenchmark(
      state, [&listener](dv::Daemon& daemon,
                         int) -> std::unique_ptr<msg::Transport> {
        if (!listener.listening) {
          if (!daemon.listen(listener.path).isOk()) return nullptr;
          listener.daemon = &daemon;
          listener.listening = true;
        }
        auto conn = msg::unixSocketConnect(listener.path);
        if (!conn.isOk()) return nullptr;
        return std::move(*conn);
      });
  ::unlink(path.c_str());
}

}  // namespace

// The sharding axis: 4 clients against 1 shard vs 4 shards is the
// headline scaling comparison; 1 and 16 clients bound the latency and
// oversubscription regimes.
BENCHMARK(BM_DaemonOpenFlood)
    ->ArgNames({"contexts", "clients"})
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({4, 4})
    ->Args({1, 16})
    ->Args({4, 16})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_DaemonSocketOpenFlood)
    ->ArgNames({"contexts", "clients"})
    ->Args({1, 4})
    ->Args({4, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return simfs::bench::runMicroBenchmarks(argc, argv, "BENCH_daemon.json");
}
