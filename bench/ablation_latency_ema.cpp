// Ablation: non-constant restart latencies and the EMA smoothing factor
// (Sec. IV-C1c).
//
// "If the restart latencies are not constant (e.g., high variability of
//  the job queueing times), SimFS may not be able to always mask the
//  restart latencies. [...] SimFS keeps track of the restart latencies
//  using an exponential moving average (the smoothing factor is a
//  parameter defined in the simulation context)."
//
// We sweep the queue-delay jitter and the context's EMA smoothing and
// report the analysis completion time: with jitter, a well-chosen
// smoothing recovers part of the masking the constant-latency case gets
// for free.
#include "bench_util.hpp"
#include "harness/scenario.hpp"

using namespace simfs;

namespace {

double runOne(VDuration jitter, double smoothing) {
  simmodel::ContextConfig cfg;
  cfg.name = "jitter";
  cfg.geometry = simmodel::StepGeometry(5, 60, 5760);
  cfg.sMax = 8;
  cfg.emaSmoothing = smoothing;
  cfg.perf = simmodel::PerfModel(100, 3 * vtime::kSecond, 13 * vtime::kSecond);

  harness::ScenarioConfig scenario;
  scenario.context = cfg;
  scenario.batch.baseDelay = 5 * vtime::kSecond;
  scenario.batch.jitterMax = jitter;
  harness::AnalysisSpec spec;
  spec.steps = trace::makeForwardTrace(0, 144, 1152);
  spec.tauCli = vtime::kSecond / 2;
  scenario.analyses = {spec};

  // Median over a few seeds (the jitter is random).
  Summary completions;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    scenario.seed = seed;
    const auto res = harness::runScenario(scenario);
    SIMFS_CHECK(res.completed);
    completions.add(vtime::toSeconds(res.analyses[0].completion()));
  }
  return completions.median();
}

}  // namespace

int main() {
  bench::banner("Ablation",
                "Non-constant restart latencies x EMA smoothing\n"
                "(COSMO fwd m=144, 5 s base queue delay, s_max=8)");

  std::printf("%-14s %10s %10s %10s   completion (s, median of 5 seeds)\n",
              "jitter max(s)", "a=0.1", "a=0.5", "a=0.9");
  for (const double jitterS : {0.0, 10.0, 30.0, 60.0}) {
    const auto jitter = vtime::fromSeconds(jitterS);
    std::printf("%-14.0f %10.1f %10.1f %10.1f\n", jitterS,
                runOne(jitter, 0.1), runOne(jitter, 0.5), runOne(jitter, 0.9));
  }
  std::printf(
      "\nreading: with constant latency the smoothing barely matters; under\n"
      "heavy queue-time jitter every underestimated latency delays the\n"
      "analysis by the estimation error (Sec. IV-C1c) — smoother EMAs\n"
      "(smaller a) absorb spikes, twitchier ones chase them.\n");
  return 0;
}
