// Microbenchmarks (google-benchmark): DV request path and engine costs.
//
// BM_DvOpenHit is the acceptance gate of the integer-keyed refactor: the
// open of an already-available step must be allocation-free (allocs/op
// counter) and at least 2x faster than the string-keyed baseline.
//
// Run with --json (see bench_util.hpp) for machine-readable output.
#include "alloc_counter.hpp"
#include "bench_util.hpp"
#include "dv/data_virtualizer.hpp"
#include "engine/engine.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace simfs;
using simfs::bench::AllocScope;

/// Launcher that only records the last job id (pure DV-path cost).
class NullLauncher final : public dv::SimLauncher {
 public:
  void launch(SimJobId job, const simmodel::JobSpec&) override { last = job; }
  void kill(SimJobId) override {}
  SimJobId last = 0;
};

simmodel::ContextConfig benchConfig() {
  simmodel::ContextConfig cfg;
  cfg.name = "bench";
  cfg.geometry = simmodel::StepGeometry(1, 16, 1 << 20);
  cfg.outputStepBytes = 1;
  cfg.cacheQuotaBytes = 1 << 16;
  cfg.prefetchEnabled = false;
  return cfg;
}

/// Hit path: open of an available step (the common case once cached).
/// Must show allocs/op == 0: the whole request is served from
/// integer-keyed structures after a single in-place filename parse.
void BM_DvOpenHit(benchmark::State& state) {
  ManualClock clock;
  NullLauncher launcher;
  dv::DataVirtualizer dv(clock);
  dv.setLauncher(&launcher);
  const auto cfg = benchConfig();
  (void)dv.registerContext(std::make_unique<simmodel::SyntheticDriver>(cfg));
  (void)dv.seedAvailableStep("bench", 7);
  const auto client = dv.clientConnect("bench").value();
  const std::string file = cfg.codec.outputFile(7);
  // Warm up: the first open creates the client's (persistent) ref entry.
  (void)dv.clientOpen(client, file);
  (void)dv.clientRelease(client, file);
  AllocScope allocs(state);
  for (auto _ : state) {
    allocs.loopStarted();
    benchmark::DoNotOptimize(dv.clientOpen(client, file));
    (void)dv.clientRelease(client, file);
  }
}

/// Miss path: open of a missing step (launch bookkeeping + pending state),
/// then the producer event and release — one full virtualization cycle.
void BM_DvMissCycle(benchmark::State& state) {
  ManualClock clock;
  NullLauncher launcher;
  dv::DataVirtualizer dv(clock);
  dv.setLauncher(&launcher);
  auto cfg = benchConfig();
  cfg.cacheQuotaBytes = 64;  // keep the resident set small: steady eviction
  (void)dv.registerContext(std::make_unique<simmodel::SyntheticDriver>(cfg));
  const auto client = dv.clientConnect("bench").value();
  StepIndex step = 0;
  AllocScope allocs(state);
  for (auto _ : state) {
    allocs.loopStarted();
    const std::string file = cfg.codec.outputFile(step);
    benchmark::DoNotOptimize(dv.clientOpen(client, file));
    // Resolve the pending state: produce the requested step and finish.
    dv.simulationFileWritten(launcher.last, file);
    dv.simulationFinished(launcher.last, Status::ok());
    (void)dv.clientRelease(client, file);
    step += 16;  // a new interval every iteration
  }
}

/// Engine event throughput: schedule + run in batches.
void BM_EngineEvents(benchmark::State& state) {
  engine::Engine engine;
  std::int64_t counter = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      engine.scheduleAfter(i, [&counter] { ++counter; });
    }
    engine.run();
  }
  benchmark::DoNotOptimize(counter);
  state.SetItemsProcessed(state.iterations() * 64);
}

/// Engine cancel cost (the kill path cancels queued production events).
void BM_EngineCancel(benchmark::State& state) {
  engine::Engine engine;
  for (auto _ : state) {
    std::vector<engine::EventId> ids;
    ids.reserve(64);
    for (int i = 0; i < 64; ++i) {
      ids.push_back(engine.scheduleAfter(1000 + i, [] {}));
    }
    for (const auto id : ids) engine.cancel(id);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

}  // namespace

BENCHMARK(BM_DvOpenHit);
BENCHMARK(BM_DvMissCycle);
BENCHMARK(BM_EngineEvents);
BENCHMARK(BM_EngineCancel);

int main(int argc, char** argv) {
  return simfs::bench::runMicroBenchmarks(argc, argv, "BENCH_micro.json");
}
