// Figure 14: data availability cost vs total number of analyses
// (dt = 2y, 50% overlap). Locates the in-situ/SimFS crossover.
#include "bench_util.hpp"
#include "cost/cost_model.hpp"
#include "cost/workload.hpp"

using namespace simfs;

int main() {
  bench::banner("Figure 14", "Cost vs number of analyses (dt = 2y)");

  const auto scenario = cost::cosmoScenario();
  const auto rates = cost::azureRates();
  constexpr double kMonths = 24.0;
  const double onDisk = cost::onDiskCost(scenario, kMonths, rates);

  std::printf("%-6s %12s %12s %12s %12s  (x1000$)\n", "z", "on-disk",
              "in-situ", "SimFS(25%)", "SimFS(50%)");

  double crossover = -1;
  double prevDelta = 0;
  for (const int z : {1, 2, 5, 10, 20, 40, 60, 80, 100, 125}) {
    Rng rng(42);  // same seed: analysis z is a prefix-extension of z-1
    const auto analyses =
        cost::makeForwardAnalyses(rng, z, scenario.numOutputSteps, 100, 400);
    const double inSitu = cost::inSituCost(scenario, analyses, rates);
    cost::VgammaConfig cfg;
    cfg.cacheFraction = 0.25;
    const auto v25 = static_cast<std::int64_t>(
        cost::evaluateVgamma(scenario, analyses, 0.5, cfg).simulatedSteps);
    cfg.cacheFraction = 0.50;
    const auto v50 = static_cast<std::int64_t>(
        cost::evaluateVgamma(scenario, analyses, 0.5, cfg).simulatedSteps);
    const double s25 = cost::simfsCost(scenario, kMonths, 8.0, 0.25, v25, rates);
    const double s50 = cost::simfsCost(scenario, kMonths, 8.0, 0.50, v50, rates);
    std::printf("%-6d %12s %12s %12s %12s\n", z,
                bench::kiloDollars(onDisk).c_str(),
                bench::kiloDollars(inSitu).c_str(),
                bench::kiloDollars(s25).c_str(),
                bench::kiloDollars(s50).c_str());
    const double delta = inSitu - s25;
    if (crossover < 0 && delta >= 0 && prevDelta < 0) crossover = z;
    prevDelta = delta;
  }
  if (crossover > 0) {
    std::printf("\nSimFS(25%%) overtakes in-situ at ~%.0f analyses\n", crossover);
  }
  std::printf(
      "\nexpected shape (paper): below ~20 analyses in-situ is cheapest\n"
      "(nothing amortizes SimFS's storage); beyond that in-situ grows\n"
      "linearly while SimFS reuses cached steps across analyses.\n");
  return 0;
}
