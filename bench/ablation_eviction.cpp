// Ablation: eviction-policy design choices beyond Fig. 5 (DESIGN.md §5).
//
//   (1) Cost awareness under a *mixed* access population — the regime the
//       paper argues DCL wins: random probes with highly non-uniform miss
//       costs (distance from the previous restart).
//   (2) Pinned-entry pressure: many concurrently referenced steps shrink
//       the evictable pool; policies must degrade gracefully, not corrupt.
//   (3) The interval-fill knob: per-miss re-simulation of whole restart
//       intervals vs only the missed step (ReplayOptions.fillWholeInterval).
#include "bench_util.hpp"
#include "cache/cache.hpp"
#include "common/stats.hpp"
#include "simmodel/step_geometry.hpp"
#include "trace/replay.hpp"
#include "trace/trace.hpp"

using namespace simfs;

namespace {

constexpr StepIndex kTimeline = 1152;
constexpr std::int64_t kInterval = 48;

const simmodel::PolicyKind kPolicies[] = {
    simmodel::PolicyKind::kLru,  simmodel::PolicyKind::kLirs,
    simmodel::PolicyKind::kArc,  simmodel::PolicyKind::kBcl,
    simmodel::PolicyKind::kDcl,  simmodel::PolicyKind::kFifo,
    simmodel::PolicyKind::kRandom,
};

trace::Trace mixedTrace(Rng& rng) {
  trace::PatternWorkload workload;
  workload.timelineSteps = kTimeline;
  workload.numTraces = 25;
  auto t = trace::makeConcatenatedPattern(rng, trace::PatternKind::kRandom,
                                          workload);
  const auto fwd = trace::makeConcatenatedPattern(
      rng, trace::PatternKind::kForward, workload);
  t.insert(t.end(), fwd.begin(), fwd.end());
  return t;
}

}  // namespace

int main() {
  bench::banner("Ablation", "Eviction design choices");

  const simmodel::StepGeometry geometry(1, kInterval, kTimeline);
  const int repCount = bench::reps("SIMFS_ABLATION_REPS", 10);

  // ------------------------------------------------- (1) cost-weighted misses
  std::printf("(1) mixed random+forward workload, cache 25%% — total\n"
              "    re-simulated steps (lower is better; %d reps median)\n\n",
              repCount);
  std::printf("%-8s %16s %12s\n", "policy", "sim steps", "restarts");
  for (const auto policy : kPolicies) {
    Summary steps;
    Summary restarts;
    for (int rep = 0; rep < repCount; ++rep) {
      Rng rng(900 + static_cast<std::uint64_t>(rep));
      auto cache = cache::makeCache(policy, kTimeline / 4);
      const auto res = trace::replayTrace(mixedTrace(rng), geometry, *cache);
      steps.add(static_cast<double>(res.simulatedSteps));
      restarts.add(static_cast<double>(res.restarts));
    }
    std::printf("%-8s %16.0f %12.0f\n", simmodel::policyKindName(policy),
                steps.median(), restarts.median());
  }

  // ---------------------------------------------------- (2) pinned pressure
  std::printf("\n(2) pinned-entry pressure: 50%% of the cache pinned by\n"
              "    long-running analyses; scan workload\n\n");
  std::printf("%-8s %12s %14s %12s\n", "policy", "evictions", "pin skips",
              "over-cap");
  for (const auto policy : kPolicies) {
    Rng rng(7);
    auto cache = cache::makeCache(policy, 128, /*seed=*/77);
    // Pin 64 steps spread across the timeline (open, never released).
    for (StepIndex s = 0; s < 64; ++s) {
      const StepIndex key = s * 18;
      (void)cache->insert(key, 1.0);
      cache->pin(key);
    }
    trace::PatternWorkload workload;
    workload.timelineSteps = kTimeline;
    const auto t = trace::makeConcatenatedPattern(
        rng, trace::PatternKind::kForward, workload);
    (void)trace::replayTrace(t, geometry, *cache);
    std::printf("%-8s %12llu %14llu %12lld\n",
                simmodel::policyKindName(policy),
                static_cast<unsigned long long>(cache->stats().evictions),
                static_cast<unsigned long long>(cache->stats().pinSkips),
                std::max<std::int64_t>(cache->size() - cache->capacity(), 0));
  }

  // ------------------------------------------------- (3) interval-fill knob
  std::printf("\n(3) spatial-locality fill (whole restart interval per miss)\n"
              "    vs missed-step-only, DCL, random workload\n\n");
  for (const bool fill : {true, false}) {
    Rng rng(11);
    trace::PatternWorkload workload;
    workload.timelineSteps = kTimeline;
    const auto t = trace::makeConcatenatedPattern(
        rng, trace::PatternKind::kRandom, workload);
    auto cache = cache::makeCache(simmodel::PolicyKind::kDcl, kTimeline / 4);
    trace::ReplayOptions opt;
    opt.fillWholeInterval = fill;
    const auto res = trace::replayTrace(t, geometry, *cache, opt);
    std::printf("  fill=%-5s  restarts %6llu  simulated steps %8llu  "
                "hit rate %4.1f%%\n",
                fill ? "whole" : "step",
                static_cast<unsigned long long>(res.restarts),
                static_cast<unsigned long long>(res.simulatedSteps),
                100.0 * res.hitRate());
  }
  std::printf(
      "\nreading: interval fills cost more steps per restart but convert\n"
      "neighbouring accesses into hits — the paper's spatial-locality bet.\n");
  return 0;
}
