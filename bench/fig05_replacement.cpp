// Figure 5: cache replacement schemes comparison for different access
// patterns.
//
// Workload (Sec. III-D): a 4-day simulation producing one output step
// every 5 minutes (1152 steps) with a restart file every 4 hours (48
// steps); the SimFS cache holds 25% of the data volume. Per pattern, 50
// traces with random starts and lengths U[100, 400] are concatenated; the
// ECMWF tile replays a synthetic trace with the archive's aggregate
// statistics. Bars = simulated output steps; points = re-simulations
// started. Median and 95% CI over repetitions.
//
// Env knobs: SIMFS_FIG5_REPS (default 20; paper: 100),
//            SIMFS_FIG5_ECMWF_ACCESSES (default 66000; real trace: 659989).
#include "bench_util.hpp"
#include "cache/cache.hpp"
#include "common/stats.hpp"
#include "simmodel/step_geometry.hpp"
#include "trace/replay.hpp"
#include "trace/trace.hpp"

#include <vector>

using namespace simfs;

namespace {

constexpr StepIndex kTimeline = 1152;   // 4 days at 5-minute steps
constexpr std::int64_t kInterval = 48;  // 4 hours
constexpr std::int64_t kCache = kTimeline / 4;  // 25%

struct PatternDef {
  const char* name;
  bool ecmwf;
  trace::PatternKind kind;
};

trace::Trace makeTrace(const PatternDef& pattern, Rng& rng,
                       std::size_t ecmwfAccesses) {
  if (pattern.ecmwf) {
    trace::EcmwfParams params;
    params.totalAccesses = ecmwfAccesses;
    return trace::makeEcmwfLikeTrace(rng, params, kTimeline);
  }
  trace::PatternWorkload workload;
  workload.timelineSteps = kTimeline;
  return trace::makeConcatenatedPattern(rng, pattern.kind, workload);
}

}  // namespace

int main() {
  bench::banner("Figure 5",
                "Cache replacement schemes vs access patterns\n"
                "(bars: simulated output steps x100; points: restarts)");

  const int repCount = bench::reps("SIMFS_FIG5_REPS", 20);
  const auto ecmwfAccesses = static_cast<std::size_t>(
      bench::reps("SIMFS_FIG5_ECMWF_ACCESSES", 66000));
  const simmodel::StepGeometry geometry(1, kInterval, kTimeline);

  const PatternDef patterns[] = {
      {"Backward", false, trace::PatternKind::kBackward},
      {"ECMWF", true, trace::PatternKind::kRandom},
      {"Forward", false, trace::PatternKind::kForward},
      {"Random", false, trace::PatternKind::kRandom},
  };
  const simmodel::PolicyKind policies[] = {
      simmodel::PolicyKind::kArc, simmodel::PolicyKind::kBcl,
      simmodel::PolicyKind::kDcl, simmodel::PolicyKind::kLirs,
      simmodel::PolicyKind::kLru,
  };

  std::printf("timeline %lld steps, restart interval %lld, cache %lld "
              "steps (25%%), %d repetitions\n\n",
              static_cast<long long>(kTimeline),
              static_cast<long long>(kInterval),
              static_cast<long long>(kCache), repCount);

  for (const auto& pattern : patterns) {
    std::printf("--- %s ---\n", pattern.name);
    std::printf("%-6s %26s %22s\n", "scheme", "simulated steps (x100)",
                "restarts");
    for (const auto policy : policies) {
      Summary steps;
      Summary restarts;
      for (int rep = 0; rep < repCount; ++rep) {
        Rng rng(0x5EED0000ULL + static_cast<std::uint64_t>(rep) * 977 +
                static_cast<std::uint64_t>(pattern.kind) * 31 +
                (pattern.ecmwf ? 7 : 0));
        const auto accessTrace = makeTrace(pattern, rng, ecmwfAccesses);
        auto cache = cache::makeCache(policy, kCache);
        const auto result = trace::replayTrace(accessTrace, geometry, *cache);
        steps.add(static_cast<double>(result.simulatedSteps) / 100.0);
        restarts.add(static_cast<double>(result.restarts));
      }
      const auto stepsCi = steps.medianCi95();
      const auto restartsCi = restarts.medianCi95();
      std::printf("%-6s %10.1f [%6.1f,%6.1f] %9.0f [%5.0f,%5.0f]\n",
                  simmodel::policyKindName(policy), steps.median(), stepsCi.lo,
                  stepsCi.hi, restarts.median(), restartsCi.lo, restartsCi.hi);
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape (paper): scan patterns similar across schemes except\n"
      "LIRS worse on Backward; cost-aware DCL minimizes steps/restarts on\n"
      "ECMWF and Random.\n");
  return 0;
}
