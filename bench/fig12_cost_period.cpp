// Figure 12: data availability cost for different availability periods,
// sweeping the restart interval (dr = 4h/8h/16h) and the SimFS cache size
// (25% / 50%). Same workload as Fig. 1.
#include "bench_util.hpp"
#include "cost/cost_model.hpp"
#include "cost/workload.hpp"

using namespace simfs;

int main() {
  bench::banner("Figure 12",
                "Cost vs availability period for dr x cache sweeps");

  const auto scenario = cost::cosmoScenario();
  const auto rates = cost::azureRates();
  Rng rng(42);
  const auto analyses =
      cost::makeForwardAnalyses(rng, 100, scenario.numOutputSteps, 100, 400);
  const double inSitu = cost::inSituCost(scenario, analyses, rates);

  for (const double deltaR : {4.0, 8.0, 16.0}) {
    std::printf("--- dr = %.0f h (%lld restart files, %.2f TiB) ---\n", deltaR,
                static_cast<long long>(scenario.numRestartFiles(deltaR)),
                static_cast<double>(scenario.numRestartFiles(deltaR)) *
                    scenario.restartGiB / 1024.0);
    // V depends on dr (capacity misses span whole intervals) and cache.
    std::int64_t v25 = 0;
    std::int64_t v50 = 0;
    {
      cost::VgammaConfig cfg;
      cfg.deltaRHours = deltaR;
      cfg.cacheFraction = 0.25;
      v25 = static_cast<std::int64_t>(
          cost::evaluateVgamma(scenario, analyses, 0.5, cfg).simulatedSteps);
      cfg.cacheFraction = 0.50;
      v50 = static_cast<std::int64_t>(
          cost::evaluateVgamma(scenario, analyses, 0.5, cfg).simulatedSteps);
    }
    std::printf("V(gamma): 25%% cache -> %lld steps, 50%% -> %lld steps\n",
                static_cast<long long>(v25), static_cast<long long>(v50));
    std::printf("%-8s %12s %12s %12s %12s  (x1000$)\n", "period", "on-disk",
                "in-situ", "SimFS(25%)", "SimFS(50%)");
    struct Period {
      const char* label;
      double months;
    };
    for (const Period p : {Period{"6m", 6}, {"1y", 12}, {"2y", 24}, {"3y", 36},
                           {"4y", 48}, {"5y", 60}}) {
      std::printf(
          "%-8s %12s %12s %12s %12s\n", p.label,
          bench::kiloDollars(cost::onDiskCost(scenario, p.months, rates)).c_str(),
          bench::kiloDollars(inSitu).c_str(),
          bench::kiloDollars(
              cost::simfsCost(scenario, p.months, deltaR, 0.25, v25, rates))
              .c_str(),
          bench::kiloDollars(
              cost::simfsCost(scenario, p.months, deltaR, 0.50, v50, rates))
              .c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape (paper): larger dr stores fewer restarts but raises\n"
      "the re-simulation bill at short periods (capacity misses span whole\n"
      "intervals); a 50%% cache trades storage cost for fewer misses.\n");
  return 0;
}
