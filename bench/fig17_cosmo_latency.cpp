// Figure 17: prefetching COSMO simulations under different restart
// latencies (job queuing time included) and analysis lengths.
//
// Synthetic simulator configured like COSMO (tau_sim = 3 s), s_max = 8;
// alpha_sim sweeps 0..600 s; analysis lengths m in {72, 288, 1152}.
// Reported series: measured SimFS analysis time, the model's prefetch
// warm-up T_pre ~ 2*alpha + n*tau_sim, the single-simulation time
// T_single = alpha + m*tau_sim, and the lower bound
// T_lower = alpha + m*tau_sim/s_max.
#include "bench_util.hpp"
#include "harness/scenario.hpp"
#include "prefetch/agent.hpp"

using namespace simfs;

namespace {

constexpr int kSmax = 8;
const VDuration kTauSim = 3 * vtime::kSecond;
const VDuration kTauCli = vtime::kSecond / 2;

simmodel::ContextConfig cosmoContext(VDuration alpha) {
  simmodel::ContextConfig cfg;
  cfg.name = "cosmo-syn";
  cfg.geometry = simmodel::StepGeometry(5, 60, 28800);  // long timeline
  cfg.sMax = kSmax;
  cfg.perf = simmodel::PerfModel(100, kTauSim, alpha);
  return cfg;
}

double measured(VDuration alpha, int m) {
  harness::ScenarioConfig cfg;
  cfg.context = cosmoContext(alpha);
  harness::AnalysisSpec spec;
  spec.steps = trace::makeForwardTrace(0, m, 5760);
  spec.tauCli = kTauCli;
  cfg.analyses = {spec};
  const auto res = harness::runScenario(cfg);
  SIMFS_CHECK(res.completed);
  return vtime::toSeconds(res.analyses[0].completion());
}

/// Re-simulation length n for the model lines (the agent's own formula).
std::int64_t resimLength(const simmodel::ContextConfig& cfg) {
  prefetch::PrefetchAgent agent(cfg);
  // Prime the agent with two strided accesses so n reflects k=1 forward.
  (void)agent.onAccess(0, 0, true, false);
  (void)agent.onAccess(1, kTauCli, true, false);
  return agent.resimLength();
}

}  // namespace

int main() {
  bench::banner("Figure 17",
                "COSMO prefetching under restart latencies (s_max = 8)");

  for (const int m : {72, 288, 1152}) {
    std::printf("--- m = %d output steps (%.0f h of model time) ---\n", m,
                m * 5.0 / 60.0);
    std::printf("%-10s %12s %12s %12s %12s\n", "alpha(s)", "SimFS(s)",
                "T_pre(s)", "T_single(s)", "T_lower(s)");
    for (const double alphaS : {0.0, 13.0, 50.0, 100.0, 200.0, 400.0, 600.0}) {
      const auto alpha = vtime::fromSeconds(alphaS);
      const auto cfg = cosmoContext(alpha);
      const double n = static_cast<double>(resimLength(cfg));
      const double tau = vtime::toSeconds(kTauSim);
      const double tPre = 2 * alphaS + n * tau;
      const double tSingle = alphaS + m * tau;
      const double tLower = alphaS + m * tau / kSmax;
      std::printf("%-10.0f %12.1f %12.1f %12.1f %12.1f\n", alphaS,
                  measured(alpha, m), tPre, tSingle, tLower);
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape (paper): for alpha >> m*tau_sim the measured time\n"
      "converges to the warm-up T_pre (~2x T_single: parallel prefetching\n"
      "cannot help before the first prefetched batch lands); longer\n"
      "analyses amortize the warm-up towards T_lower.\n");
  return 0;
}
