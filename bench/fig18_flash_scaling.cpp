// Figure 18: strong scalability of analyses accessing virtualized FLASH
// (Sedov) data — analysis completion time vs s_max.
//
// FLASH context (Sec. VI): 0.005 s timesteps, one output step per
// timestep (delta_d = 1), restart every 0.1 s (delta_r = 20);
// tau_sim = 14 s, alpha_sim = 7 s. The analysis reads the first second of
// the blast (m = 200 output steps), forward and backward.
#include "bench_util.hpp"
#include "harness/scenario.hpp"

using namespace simfs;

namespace {

simmodel::ContextConfig flashContext(int sMax) {
  simmodel::ContextConfig cfg;
  cfg.name = "flash";
  cfg.geometry = simmodel::StepGeometry(1, 20, 1200);
  cfg.sMax = sMax;
  cfg.perf = simmodel::PerfModel(54, 14 * vtime::kSecond, 7 * vtime::kSecond);
  return cfg;
}

VDuration runOne(int sMax, bool backward) {
  harness::ScenarioConfig cfg;
  cfg.context = flashContext(sMax);
  harness::AnalysisSpec spec;
  spec.label = backward ? "backward" : "forward";
  spec.steps = backward ? trace::makeBackwardTrace(199, 200, 1200)
                        : trace::makeForwardTrace(0, 200, 1200);
  spec.tauCli = vtime::kSecond;  // velocity-field mean/variance
  cfg.analyses = {spec};
  const auto res = harness::runScenario(cfg);
  SIMFS_CHECK(res.completed);
  return res.analyses[0].completion();
}

}  // namespace

int main() {
  bench::banner("Figure 18",
                "FLASH strong scaling: analysis time vs s_max\n"
                "(m = 200 output steps = 1 s of blast evolution)");

  const double fullForward =
      vtime::toSeconds(7 * vtime::kSecond + 200 * 14 * vtime::kSecond);

  std::printf("%-6s %14s %14s %12s %12s\n", "s_max", "forward(s)",
              "backward(s)", "fwd speedup", "bwd speedup");
  for (const int sMax : {2, 4, 8, 16}) {
    const double fwd = vtime::toSeconds(runOne(sMax, false));
    const double bwd = vtime::toSeconds(runOne(sMax, true));
    std::printf("%-6d %14.1f %14.1f %11.2fx %11.2fx\n", sMax, fwd, bwd,
                fullForward / fwd, fullForward / bwd);
  }
  std::printf("%-6s %14.1f  (full forward re-simulation baseline)\n", "ref",
              fullForward);
  std::printf(
      "\nexpected shape (paper): scales to ~3x at s_max = 16; forward and\n"
      "backward behave alike because the frequent restarts (20 steps per\n"
      "interval) make the backward first-miss penalty small.\n");
  return 0;
}
