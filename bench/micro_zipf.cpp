// Zipf-skewed federation serving throughput (google-benchmark): the
// replica-lease headline number. A 3-node ring serves 6 contexts; 9
// client threads issue vectored opens whose CONTEXT choice follows a
// Zipf(alpha = 1.1) distribution, so one hot context dominates the
// traffic exactly like a popular simulation output under analysis
// fan-in. Every open hits a pre-seeded resident step.
//
//   replicas:0  — owner-only serving: the hot context's ring owner (one
//                 shard, one node) serializes the skewed load.
//   replicas:2  — read-only lease fan-out: both ring successors hold
//                 leases over the resident steps and the dvlib sessions
//                 spread acquires across owner + replicas with
//                 power-of-two-choices on estimated wait.
//
// The items_per_second ratio replicas:2 / replicas:0 is the gate CI
// tracks (zipf-smoke): the fan-out must at least double aggregate open
// throughput on a multi-core runner. allocs/op audits the steady-state
// serving path across ALL threads in a quiet region (client sessions,
// reactors, shard workers, lease plane); periodic peer heartbeats are
// the only expected source, so the number must be ~0.
//
// Run with --json (see bench_util.hpp) for BENCH_zipf.json.
#include "alloc_counter.hpp"
#include "bench_util.hpp"
#include "cluster/ring.hpp"
#include "dv/daemon.hpp"
#include "dvlib/router.hpp"
#include "dvlib/session.hpp"
#include "msg/message.hpp"
#include "msg/transport.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace {

using namespace simfs;

constexpr int kNodes = 3;
constexpr int kContexts = 6;
constexpr int kClients = 9;
constexpr StepIndex kSeededSteps = 64;
constexpr std::size_t kBatchFiles = 4;   ///< files per kOpenBatchReq
constexpr std::size_t kWindow = 32;      ///< in-flight acquires per client
constexpr int kOpsPerClientPerIter = 512;
constexpr double kZipfAlpha = 1.1;

class NullLauncher final : public dv::SimLauncher {
 public:
  void launch(SimJobId, const simmodel::JobSpec&) override {}
  void kill(SimJobId) override {}
};

simmodel::ContextConfig zipfContext(int i) {
  simmodel::ContextConfig cfg;
  cfg.name = "zipf" + std::to_string(i);
  cfg.geometry = simmodel::StepGeometry(1, 16, 1 << 12);
  cfg.outputStepBytes = 1;
  cfg.cacheQuotaBytes = 1 << 16;  // far above the seeded set: no eviction
  cfg.prefetchEnabled = false;
  return cfg;
}

std::string zipfSocketPath(int i) {
  static const int pid = static_cast<int>(::getpid());
  return "/tmp/simfs_zipf_" + std::to_string(pid) + "_" + std::to_string(i) +
         ".sock";
}

/// Cumulative Zipf(alpha) distribution over kContexts ranks. Rank k
/// (0-based) gets weight 1 / (k+1)^alpha; the hottest context takes
/// ~44% of the traffic at alpha = 1.1 over 6 contexts.
std::vector<double> zipfCdf() {
  std::vector<double> cdf(kContexts);
  double total = 0;
  for (int k = 0; k < kContexts; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), kZipfAlpha);
    cdf[static_cast<std::size_t>(k)] = total;
  }
  for (auto& v : cdf) v /= total;
  return cdf;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One ring member, serving a Unix socket.
struct ZipfNode {
  std::unique_ptr<dv::Daemon> daemon;
  std::string socketPath;
};

/// One client thread: a session per context (each spreading over
/// owner + leased replicas on its own), a deterministic per-thread Zipf
/// stream, and a bounded window of in-flight vectored acquires.
struct ZipfClient {
  std::vector<std::shared_ptr<dvlib::Session>> sessions;  ///< per context
  std::vector<std::vector<std::string>> files;  ///< [context][step] names
  std::vector<std::string> batch;               ///< reused batch storage
  std::uint64_t rng = 0;
  std::uint64_t acks = 0;

  /// Streams `n` Zipf-routed batched acquires, windowed, then drains.
  bool flood(int n, const std::vector<double>& cdf) {
    std::vector<dvlib::AcquireHandle> window(kWindow);
    batch.resize(kBatchFiles);
    bool ok = true;
    for (int i = 0; i < n; ++i) {
      const double u =
          static_cast<double>(splitmix64(rng) >> 11) * 0x1p-53;
      int ctx = 0;
      while (ctx < kContexts - 1 && cdf[static_cast<std::size_t>(ctx)] < u) {
        ++ctx;
      }
      const auto& names = files[static_cast<std::size_t>(ctx)];
      for (std::size_t j = 0; j < kBatchFiles; ++j) {
        batch[j].assign(
            names[(static_cast<std::size_t>(i) * kBatchFiles + j) %
                  names.size()]);
      }
      auto& slot = window[static_cast<std::size_t>(i) % kWindow];
      if (slot.valid()) {
        if (!slot.wait().isOk()) ok = false;
        ++acks;
      }
      slot = sessions[static_cast<std::size_t>(ctx)]->acquireAsync(
          std::span<const std::string>(batch));
    }
    for (auto& slot : window) {
      if (!slot.valid()) continue;
      if (!slot.wait().isOk()) ok = false;
      ++acks;
      slot = dvlib::AcquireHandle();
    }
    return ok;
  }
};

/// Persistent client threads (same rationale as micro_daemon's FloodPool:
/// thread spawn cost and allocation must stay out of the timed region).
class ZipfPool {
 public:
  ZipfPool(std::vector<std::unique_ptr<ZipfClient>>& clients,
           const std::vector<double>& cdf)
      : clients_(clients), cdf_(cdf) {
    threads_.reserve(clients_.size());
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      threads_.emplace_back([this, i] { worker(i); });
    }
  }

  ~ZipfPool() {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Runs one flood round on every client; returns false on any failure.
  bool runRound(int opsPerClient) {
    {
      std::lock_guard lock(mu_);
      ops_ = opsPerClient;
      done_ = 0;
      ok_ = true;
      ++round_;
    }
    cv_.notify_all();
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return done_ == threads_.size(); });
    return ok_;
  }

 private:
  void worker(std::size_t index) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [&] { return stop_ || round_ != seen; });
        if (stop_) return;
        seen = round_;
      }
      const bool ok = clients_[index]->flood(ops_, cdf_);
      {
        std::lock_guard lock(mu_);
        if (!ok) ok_ = false;
        ++done_;
      }
      cv_.notify_all();
    }
  }

  std::vector<std::unique_ptr<ZipfClient>>& clients_;
  const std::vector<double>& cdf_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t round_ = 0;
  std::size_t done_ = 0;
  int ops_ = 0;
  bool ok_ = true;
  bool stop_ = false;
};

void BM_ZipfOpenFlood(benchmark::State& state) {
  const int replicas = static_cast<int>(state.range(0));

  std::vector<cluster::NodeInfo> members;
  for (int i = 0; i < kNodes; ++i) {
    members.push_back({"dv" + std::to_string(i), zipfSocketPath(i)});
  }
  const cluster::Ring ring =
      cluster::Ring::make(std::move(members), /*version=*/1).value();

  NullLauncher launcher;
  std::vector<ZipfNode> nodes;
  std::vector<simmodel::ContextConfig> cfgs;
  for (int c = 0; c < kContexts; ++c) cfgs.push_back(zipfContext(c));
  for (int i = 0; i < kNodes; ++i) {
    ZipfNode node;
    dv::Daemon::Options options;
    options.shards = 2;
    options.workers = 2;
    options.nodeId = "dv" + std::to_string(i);
    options.ring = ring;
    options.replicas = replicas;
    options.queueCap =
        static_cast<std::size_t>(kClients) * kWindow * kBatchFiles * 4;
    node.daemon = std::make_unique<dv::Daemon>(options);
    node.daemon->setLauncher(&launcher);
    for (int c = 0; c < kContexts; ++c) {
      if (!node.daemon
               ->registerContext(
                   std::make_unique<simmodel::SyntheticDriver>(cfgs[c]))
               .isOk()) {
        state.SkipWithError("registerContext failed");
        return;
      }
    }
    node.socketPath = zipfSocketPath(i);
    if (!node.daemon->listen(node.socketPath).isOk()) {
      state.SkipWithError("listen failed");
      return;
    }
    nodes.push_back(std::move(node));
  }

  // Seed the resident working set on each context's RING OWNER; the
  // seeds fan leases out to the R successors through the lease plane.
  for (int c = 0; c < kContexts; ++c) {
    const std::string owner = ring.ownerOf(cfgs[c].name).id;
    for (auto& node : nodes) {
      if (node.daemon->nodeId() != owner) continue;
      for (StepIndex s = 0; s < kSeededSteps; ++s) {
        (void)node.daemon->seedAvailableStep(cfgs[c].name, s);
      }
    }
  }

  if (replicas > 0) {
    // Lease propagation barrier: every replica must hold the full seeded
    // step set before the measured rounds, or the early traffic would
    // measure not-leased fallbacks instead of steady-state serving.
    const std::uint64_t want = static_cast<std::uint64_t>(kContexts) *
                               kSeededSteps *
                               static_cast<std::uint64_t>(replicas);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    std::uint64_t leased = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      leased = 0;
      for (auto& node : nodes) {
        for (const auto& sc : node.daemon->shardCounters()) {
          leased += sc.leasedSteps;
        }
      }
      if (leased >= want) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (leased < want) {
      state.SkipWithError("lease propagation timed out");
      return;
    }
  }

  auto router = dvlib::NodeRouter::overUnixSockets(ring);
  std::vector<std::unique_ptr<ZipfClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    auto client = std::make_unique<ZipfClient>();
    client->rng = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(c + 1);
    for (int x = 0; x < kContexts; ++x) {
      auto session = dvlib::Session::connect(router, cfgs[x].name);
      if (!session.isOk()) {
        state.SkipWithError("session connect failed");
        return;
      }
      client->sessions.push_back(std::move(*session));
      std::vector<std::string> names;
      for (StepIndex s = 0; s < kSeededSteps; ++s) {
        names.push_back(cfgs[x].codec.outputFile(s));
      }
      client->files.push_back(std::move(names));
    }
    clients.push_back(std::move(client));
  }

  const std::vector<double> cdf = zipfCdf();
  {
    ZipfPool pool(clients, cdf);
    // Untimed warm-up: grows pools/arenas to steady state AND triggers
    // the sessions' replica-link setup (the first acquire schedules it).
    if (!pool.runRound(kOpsPerClientPerIter)) {
      state.SkipWithError("warm-up round failed");
      return;
    }
    if (replicas > 0) {
      // Replica links come up asynchronously on the sessions' recovery
      // threads — wait until every session spreads over all R replicas.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(20);
      bool linked = false;
      while (!linked && std::chrono::steady_clock::now() < deadline) {
        linked = true;
        for (auto& client : clients) {
          for (auto& session : client->sessions) {
            if (session->replicaEndpoints() <
                static_cast<std::size_t>(replicas)) {
              linked = false;
              break;
            }
          }
          if (!linked) break;
        }
        if (!linked) {
          (void)pool.runRound(kOpsPerClientPerIter / 8);
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
      if (!linked) {
        state.SkipWithError("replica links did not come up");
        return;
      }
      (void)pool.runRound(kOpsPerClientPerIter);  // re-warm, links live
    }
    for (auto _ : state) {
      if (!pool.runRound(kOpsPerClientPerIter)) {
        state.SkipWithError("flood round failed");
        return;
      }
    }
    // Steady-state allocation audit in a quiet region (same discipline
    // as micro_daemon): serving must not touch the heap. Peer
    // heartbeats are the only tolerated source, amortized to ~0/op.
    const std::uint64_t before =
        bench::g_allocCount.load(std::memory_order_relaxed);
    (void)pool.runRound(kOpsPerClientPerIter);
    state.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(bench::g_allocCount.load(
                                std::memory_order_relaxed) -
                            before) /
        (static_cast<double>(kClients) * kOpsPerClientPerIter * kBatchFiles));
  }

  // Opens per second: every acquire carries kBatchFiles resident files.
  state.SetItemsProcessed(state.iterations() * kClients *
                          kOpsPerClientPerIter *
                          static_cast<std::int64_t>(kBatchFiles));
  state.counters["replicas"] = replicas;
  state.counters["clients"] = kClients;
  std::uint64_t replicaHits = 0;
  std::uint64_t opens = 0;
  for (auto& node : nodes) {
    for (const auto& sc : node.daemon->shardCounters()) {
      replicaHits += sc.replicaHits;
    }
    opens += node.daemon->stats().opens;
  }
  // Share of opens served off-owner: ~0 at replicas:0, substantial at
  // replicas:2 (the fan-out actually absorbing the skew).
  state.counters["replica_share"] =
      opens > 0 ? static_cast<double>(replicaHits) /
                      static_cast<double>(replicaHits + opens)
                : 0.0;

  for (auto& client : clients) {
    for (auto& session : client->sessions) session->finalize();
  }
  clients.clear();
  router->drainPool();
  for (auto& node : nodes) node.daemon.reset();
  for (int i = 0; i < kNodes; ++i) ::unlink(zipfSocketPath(i).c_str());
}

}  // namespace

BENCHMARK(BM_ZipfOpenFlood)
    ->ArgNames({"replicas"})
    ->Arg(0)
    ->Arg(2)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return simfs::bench::runMicroBenchmarks(argc, argv, "BENCH_zipf.json");
}
