// DVLib session-API round-trip costs (google-benchmark): the per-file
// open loop (the pre-redesign wire shape — one request/reply per file)
// against the vectored acquire (ONE kOpenBatchReq for the whole batch,
// released again with one kCancelReq), end-to-end through a real daemon
// over a Unix-domain socket:
//
//   Session -> socket -> reactor -> dispatch -> shard queue -> worker
//   batch drain -> DvShard -> buffered ack -> reactor -> Session
//
// All opens hit pre-seeded steps, so the measured gap is pure protocol:
// N round trips vs 1. Batch sizes 1 / 8 / 64 mirror typical analysis
// working sets; items_per_second counts files acquired+released per
// second (real time).
//
// Run with --json (see bench_util.hpp) for BENCH_dvlib.json.
#include "alloc_counter.hpp"
#include "bench_util.hpp"
#include "dv/daemon.hpp"
#include "dvlib/session.hpp"
#include "msg/transport.hpp"

#include <benchmark/benchmark.h>

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace {

using namespace simfs;

constexpr StepIndex kSeededSteps = 64;

/// Pure hit traffic: the launcher seam must exist but never fires.
class NullLauncher final : public dv::SimLauncher {
 public:
  void launch(SimJobId, const simmodel::JobSpec&) override {}
  void kill(SimJobId) override {}
};

simmodel::ContextConfig benchContext() {
  simmodel::ContextConfig cfg;
  cfg.name = "bench";
  cfg.geometry = simmodel::StepGeometry(1, 16, 1 << 12);
  cfg.outputStepBytes = 1;
  cfg.cacheQuotaBytes = 1 << 16;  // far above the seeded set: no eviction
  cfg.prefetchEnabled = false;
  return cfg;
}

/// Daemon serving a Unix socket with kSeededSteps pre-available steps,
/// plus one connected session.
struct Stack {
  NullLauncher launcher;
  std::unique_ptr<dv::Daemon> daemon;
  std::shared_ptr<dvlib::Session> session;
  std::vector<std::string> files;

  explicit Stack(const std::string& tag) {
    const auto cfg = benchContext();
    daemon = std::make_unique<dv::Daemon>();
    if (!daemon
             ->registerContext(
                 std::make_unique<simmodel::SyntheticDriver>(cfg))
             .isOk()) {
      std::abort();
    }
    daemon->setLauncher(&launcher);
    for (StepIndex s = 0; s < kSeededSteps; ++s) {
      (void)daemon->seedAvailableStep(cfg.name, s);
      files.push_back(cfg.codec.outputFile(s));
    }
    const std::string path = "/tmp/simfs_bench_dvlib_" + tag + "_" +
                             std::to_string(::getpid()) + ".sock";
    if (!daemon->listen(path).isOk()) std::abort();
    auto conn = msg::unixSocketConnect(path);
    if (!conn) std::abort();
    auto s = dvlib::Session::connect(std::move(*conn), cfg.name);
    if (!s) std::abort();
    session = std::move(*s);
  }

  ~Stack() {
    session->finalize();
    daemon->stop();
  }
};

/// The pre-redesign shape: one request/reply round trip per file (open),
/// then one per file again (release).
void BM_DvlibPerFileLoop(benchmark::State& state) {
  Stack stack("loop" + std::to_string(state.range(0)));
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      auto info = stack.session->open(stack.files[i]);
      if (!info || !info->available) state.SkipWithError("open missed");
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!stack.session->release(stack.files[i]).isOk()) {
        state.SkipWithError("release failed");
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}

/// The redesigned shape: the whole batch in ONE kOpenBatchReq, released
/// again with one kCancelReq. The span overload routes through the
/// session's pooled acquire states and the transports' pooled wire
/// buffers, so after the untimed warm-up cycles the loop reports
/// 0 allocs/op end to end (client + reactor + daemon) — CI gates on it.
void BM_DvlibVectoredAcquire(benchmark::State& state) {
  Stack stack("vec" + std::to_string(state.range(0)));
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::span<const std::string> batch(stack.files.data(), n);
  for (int warm = 0; warm < 3; ++warm) {
    auto handle = stack.session->acquireAsync(batch);
    if (!handle.wait().isOk()) state.SkipWithError("warmup acquire failed");
    if (!handle.cancel().isOk()) state.SkipWithError("warmup cancel failed");
  }
  for (auto _ : state) {
    auto handle = stack.session->acquireAsync(batch);
    if (!handle.wait().isOk()) state.SkipWithError("acquire failed");
    if (!handle.cancel().isOk()) state.SkipWithError("cancel failed");
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
  // Steady-state allocation audit, in a quiet region after the timed
  // loop so google-benchmark's own bookkeeping cannot leak into the
  // count: every operator-new on any thread (session, reactor, daemon
  // workers) lands in g_allocCount. CI fails the bench if this is not 0.
  constexpr int kAuditIters = 500;
  const std::uint64_t before =
      bench::g_allocCount.load(std::memory_order_relaxed);
  for (int i = 0; i < kAuditIters; ++i) {
    auto handle = stack.session->acquireAsync(batch);
    if (!handle.wait().isOk()) state.SkipWithError("audit acquire failed");
    if (!handle.cancel().isOk()) state.SkipWithError("audit cancel failed");
  }
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(bench::g_allocCount.load(
                              std::memory_order_relaxed) -
                          before) /
      (static_cast<double>(kAuditIters) * static_cast<double>(n)));
}

/// Batched release (vector kReleaseReq): acquire N files vectored, then
/// release them all with ONE request/reply round trip instead of N —
/// the daemon drops every reference under a single shard-lock
/// acquisition.
void BM_DvlibBatchedRelease(benchmark::State& state) {
  Stack stack("rel" + std::to_string(state.range(0)));
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::span<const std::string> batch(stack.files.data(), n);
  for (auto _ : state) {
    auto handle = stack.session->acquireAsync(batch);
    if (!handle.wait().isOk()) state.SkipWithError("acquire failed");
    if (!stack.session->release(batch).isOk()) {
      state.SkipWithError("release failed");
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}

BENCHMARK(BM_DvlibPerFileLoop)
    ->ArgName("files")
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_DvlibVectoredAcquire)
    ->ArgName("files")
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_DvlibBatchedRelease)
    ->ArgName("files")
    ->Arg(8)
    ->Arg(64)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return simfs::bench::runMicroBenchmarks(argc, argv, "BENCH_dvlib.json");
}
