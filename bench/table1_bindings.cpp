// Table I: mapping of data-access operations to I/O libraries —
// demonstrated live. Each facade (sncdf, sh5, sadios) performs the
// open/create/read/close cycle through the interception layer against a
// running DV daemon; the table row is printed once the cycle succeeds.
#include "bench_util.hpp"
#include "dv/daemon.hpp"
#include "dvlib/iolib.hpp"
#include "dvlib/simfs_client.hpp"
#include "simulator/threaded_fleet.hpp"
#include "vfs/file_store.hpp"

using namespace simfs;
using namespace simfs::dvlib;

int main() {
  bench::banner("Table I", "Mapping data access operations to I/O libraries");

  simmodel::ContextConfig cfg;
  cfg.name = "t1";
  cfg.geometry = simmodel::StepGeometry(1, 4, 64);
  cfg.sMax = 2;
  cfg.perf = simmodel::PerfModel(1, vtime::kMillisecond, 2 * vtime::kMillisecond);

  vfs::MemFileStore store;
  dv::Daemon daemon;
  simulator::ThreadedSimulatorFleet fleet(daemon, store, 1.0);
  fleet.setProducer([](const simmodel::JobSpec&, StepIndex step) {
    return encodeField(std::vector<double>(4, static_cast<double>(step)));
  });
  SIMFS_CHECK(
      daemon.registerContext(std::make_unique<simmodel::SyntheticDriver>(cfg))
          .isOk());
  fleet.registerContext(cfg);
  daemon.setLauncher(&fleet);

  auto client = SimFSClient::connect(daemon.connectInProc(), "t1");
  SIMFS_CHECK(client.isOk());

  double buf[8];
  std::size_t n = 0;

  // --- sncdf (netCDF-like): read path via interception ----------------------
  IoDispatch::instance().installAnalysis(client->get(), &store);
  int ncid = -1;
  SIMFS_CHECK(snc_open("out_0000000005.snc", 0, &ncid) == 0);
  SIMFS_CHECK(snc_get_var_double(ncid, buf, 8, &n) == 0);
  SIMFS_CHECK(snc_close(ncid) == 0);
  const bool ncOk = n == 4;

  // --- sh5 (HDF5-like) --------------------------------------------------------
  const sh5_id h5 = sh5_fopen("out_0000000006.snc", 0);
  SIMFS_CHECK(h5 > 0);
  SIMFS_CHECK(sh5_dread(h5, buf, 8, &n) == 0);
  SIMFS_CHECK(sh5_fclose(h5) == 0);
  const bool h5Ok = n == 4;

  // --- sadios (ADIOS-like) ----------------------------------------------------
  const sadios_id ad = sadios_open("out_0000000007.snc", "r");
  SIMFS_CHECK(ad > 0);
  SIMFS_CHECK(sadios_schedule_read(ad, buf, 8, &n) == 0);
  SIMFS_CHECK(sadios_perform_reads(ad) == 0);
  SIMFS_CHECK(sadios_close(ad) == 0);
  const bool adOk = n == 4;

  // --- simulator-side create/close (any facade) -------------------------------
  bool createOk = false;
  IoDispatch::instance().installSimulator(
      [&createOk](const std::string& name) {
        createOk = name == "out_0000000042.snc";
      },
      &store);
  int wid = -1;
  SIMFS_CHECK(snc_create("out_0000000042.snc", 0, &wid) == 0);
  const double payload[2] = {1.0, 2.0};
  SIMFS_CHECK(snc_put_var_double(wid, payload, 2) == 0);
  SIMFS_CHECK(snc_close(wid) == 0);
  IoDispatch::instance().reset();

  std::printf("%-8s %-22s %-16s %-24s %s\n", "Call", "(P)NetCDF-like",
              "(P)HDF5-like", "ADIOS-like", "verified");
  std::printf("%-8s %-22s %-16s %-24s %s\n", "open", "snc_open", "sh5_fopen",
              "sadios_open(\"r\")", ncOk && h5Ok && adOk ? "yes" : "NO");
  std::printf("%-8s %-22s %-16s %-24s %s\n", "create", "snc_create",
              "sh5_fcreate", "sadios_open(\"w\")", createOk ? "yes" : "NO");
  std::printf("%-8s %-22s %-16s %-24s %s\n", "read", "snc_get_var_double",
              "sh5_dread", "sadios_schedule_read", ncOk ? "yes" : "NO");
  std::printf("%-8s %-22s %-16s %-24s %s\n", "close", "snc_close",
              "sh5_fclose", "sadios_close", "yes");

  const auto stats = daemon.stats();
  std::printf("\nall reads were misses served by re-simulation "
              "(%llu jobs launched, %llu steps produced)\n",
              static_cast<unsigned long long>(stats.jobsLaunched),
              static_cast<unsigned long long>(stats.stepsProduced));
  return ncOk && h5Ok && adOk && createOk ? 0 : 1;
}
