// Global-new/delete instrumentation for the micro benches: counts heap
// allocations so benches can report allocs/op and prove hot paths are
// allocation-free.
//
// Include from exactly ONE translation unit per binary (the replacement
// operators below are definitions, not declarations).
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace simfs::bench {

/// Total operator-new calls in this process. Relaxed atomic so the
/// multi-threaded serving benches (flood clients, reactor loops, shard
/// workers) count every thread's allocations — a steady-state reading of
/// 0 really means NO thread touched the heap.
inline std::atomic<std::uint64_t> g_allocCount{0};

namespace detail {

inline void* countedAlloc(std::size_t size) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  // malloc(0) may legally return nullptr; operator new must not.
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

inline void* countedAlignedAlloc(std::size_t size, std::align_val_t align) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = ((size > 0 ? size : 1) + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}

}  // namespace detail

/// Tracks allocations across a timed benchmark loop and reports an
/// allocs/op counter. Call loopStarted() as the first statement of every
/// iteration; the first call arms the counter (skipping loop-setup
/// allocations), the destructor files the result. Benches whose iteration
/// performs many logical operations (a flood of N opens, a batch of N
/// files) pass the per-iteration op count so allocs/op means "per
/// request", matching items_per_second.
class AllocScope {
 public:
  explicit AllocScope(benchmark::State& state, double opsPerIteration = 1.0)
      : state_(state), opsPerIteration_(opsPerIteration) {}
  void loopStarted() {
    if (!armed_) {
      armed_ = true;
      start_ = g_allocCount.load(std::memory_order_relaxed);
    }
  }
  ~AllocScope() {
    if (armed_ && state_.iterations() > 0) {
      state_.counters["allocs/op"] = benchmark::Counter(
          static_cast<double>(g_allocCount.load(std::memory_order_relaxed) -
                              start_) /
          (static_cast<double>(state_.iterations()) * opsPerIteration_));
    }
  }

 private:
  benchmark::State& state_;
  double opsPerIteration_;
  bool armed_ = false;
  std::uint64_t start_ = 0;
};

}  // namespace simfs::bench

void* operator new(std::size_t size) {
  return simfs::bench::detail::countedAlloc(size);
}

void* operator new[](std::size_t size) {
  return simfs::bench::detail::countedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  return simfs::bench::detail::countedAlignedAlloc(size, align);
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return simfs::bench::detail::countedAlignedAlloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
