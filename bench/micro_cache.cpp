// Microbenchmarks (google-benchmark): replacement-policy operation costs.
//
// The DV serves open() on the critical path of every analysis access, so
// cache ops must stay in the nanoseconds range even for the scan-heavy
// and ghost-heavy workloads the paper's traces produce. Keys are
// StepIndex values (the post-refactor integer-keyed API); every bench
// also reports allocs/op via the global-new counter.
//
// Run with --json (see bench_util.hpp) for machine-readable output.
#include "alloc_counter.hpp"
#include "bench_util.hpp"
#include "cache/cache.hpp"
#include "common/rng.hpp"

#include <benchmark/benchmark.h>

namespace {

using simfs::Rng;
using simfs::StepIndex;
using simfs::bench::AllocScope;
using simfs::cache::makeCache;
using simfs::simmodel::PolicyKind;

constexpr PolicyKind kPolicies[] = {
    PolicyKind::kLru, PolicyKind::kLirs, PolicyKind::kArc,
    PolicyKind::kBcl, PolicyKind::kDcl,
};

/// Hit-dominated: working set fits in the cache.
void BM_CacheHits(benchmark::State& state) {
  const auto policy = kPolicies[state.range(0)];
  const auto cache = makeCache(policy, 1024);
  Rng rng(1);
  for (StepIndex k = 0; k < 512; ++k) cache->access(k, 1.0);
  AllocScope allocs(state);
  for (auto _ : state) {
    allocs.loopStarted();
    benchmark::DoNotOptimize(cache->access(rng.uniformInt(0, 511), 1.0));
  }
  state.SetLabel(cache->name());
}

/// Eviction-heavy: universe 8x the capacity, every miss evicts.
void BM_CacheEvictions(benchmark::State& state) {
  const auto policy = kPolicies[state.range(0)];
  const auto cache = makeCache(policy, 256);
  Rng rng(2);
  AllocScope allocs(state);
  for (auto _ : state) {
    allocs.loopStarted();
    benchmark::DoNotOptimize(
        cache->access(rng.uniformInt(0, 2047),
                      static_cast<double>(rng.uniformInt(1, 48))));
  }
  state.SetLabel(cache->name());
}

/// Scan workload: cyclic sweep over 4x capacity (the pathological case
/// for LRU-family policies).
void BM_CacheScan(benchmark::State& state) {
  const auto policy = kPolicies[state.range(0)];
  const auto cache = makeCache(policy, 256);
  StepIndex i = 0;
  AllocScope allocs(state);
  for (auto _ : state) {
    allocs.loopStarted();
    benchmark::DoNotOptimize(cache->access(i, 1.0));
    i = (i + 1) % 1024;
  }
  state.SetLabel(cache->name());
}

/// Interval fills: the spatial-locality insert() burst a re-simulation
/// produces (48 steps per restart interval in the Fig. 5 setup).
void BM_CacheIntervalFill(benchmark::State& state) {
  const auto policy = kPolicies[state.range(0)];
  const auto cache = makeCache(policy, 288);
  StepIndex base = 0;
  AllocScope allocs(state);
  for (auto _ : state) {
    allocs.loopStarted();
    for (StepIndex j = 0; j < 48; ++j) {
      benchmark::DoNotOptimize(
          cache->insert((base + j) % 1152, static_cast<double>(j + 1)));
    }
    base = (base + 48) % 1152;
  }
  state.SetItemsProcessed(state.iterations() * 48);
  state.SetLabel(cache->name());
}

}  // namespace

BENCHMARK(BM_CacheHits)->DenseRange(0, 4);
BENCHMARK(BM_CacheEvictions)->DenseRange(0, 4);
BENCHMARK(BM_CacheScan)->DenseRange(0, 4);
BENCHMARK(BM_CacheIntervalFill)->DenseRange(0, 4);

int main(int argc, char** argv) {
  return simfs::bench::runMicroBenchmarks(argc, argv, "BENCH_micro.json");
}
