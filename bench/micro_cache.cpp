// Microbenchmarks (google-benchmark): replacement-policy operation costs.
//
// The DV serves open() on the critical path of every analysis access, so
// cache ops must stay in the microseconds range even for the scan-heavy
// and ghost-heavy workloads the paper's traces produce.
#include "cache/cache.hpp"
#include "common/rng.hpp"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace {

using simfs::Rng;
using simfs::cache::makeCache;
using simfs::simmodel::PolicyKind;

constexpr PolicyKind kPolicies[] = {
    PolicyKind::kLru, PolicyKind::kLirs, PolicyKind::kArc,
    PolicyKind::kBcl, PolicyKind::kDcl,
};

std::vector<std::string> makeKeys(int universe) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(universe));
  for (int i = 0; i < universe; ++i) keys.push_back("f" + std::to_string(i));
  return keys;
}

/// Hit-dominated: working set fits in the cache.
void BM_CacheHits(benchmark::State& state) {
  const auto policy = kPolicies[state.range(0)];
  const auto cache = makeCache(policy, 1024);
  const auto keys = makeKeys(512);
  Rng rng(1);
  for (const auto& k : keys) cache->access(k, 1.0);
  for (auto _ : state) {
    const auto& k = keys[static_cast<std::size_t>(rng.uniformInt(0, 511))];
    benchmark::DoNotOptimize(cache->access(k, 1.0));
  }
  state.SetLabel(cache->name());
}

/// Eviction-heavy: universe 8x the capacity, every miss evicts.
void BM_CacheEvictions(benchmark::State& state) {
  const auto policy = kPolicies[state.range(0)];
  const auto cache = makeCache(policy, 256);
  const auto keys = makeKeys(2048);
  Rng rng(2);
  for (auto _ : state) {
    const auto& k = keys[static_cast<std::size_t>(rng.uniformInt(0, 2047))];
    benchmark::DoNotOptimize(
        cache->access(k, static_cast<double>(rng.uniformInt(1, 48))));
  }
  state.SetLabel(cache->name());
}

/// Scan workload: cyclic sweep over 4x capacity (the pathological case
/// for LRU-family policies).
void BM_CacheScan(benchmark::State& state) {
  const auto policy = kPolicies[state.range(0)];
  const auto cache = makeCache(policy, 256);
  const auto keys = makeKeys(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache->access(keys[i], 1.0));
    i = (i + 1) % keys.size();
  }
  state.SetLabel(cache->name());
}

/// Interval fills: the spatial-locality insert() burst a re-simulation
/// produces (48 steps per restart interval in the Fig. 5 setup).
void BM_CacheIntervalFill(benchmark::State& state) {
  const auto policy = kPolicies[state.range(0)];
  const auto cache = makeCache(policy, 288);
  const auto keys = makeKeys(1152);
  std::size_t base = 0;
  for (auto _ : state) {
    for (int j = 0; j < 48; ++j) {
      benchmark::DoNotOptimize(
          cache->insert(keys[(base + static_cast<std::size_t>(j)) % 1152],
                        static_cast<double>(j + 1)));
    }
    base = (base + 48) % 1152;
  }
  state.SetItemsProcessed(state.iterations() * 48);
  state.SetLabel(cache->name());
}

}  // namespace

BENCHMARK(BM_CacheHits)->DenseRange(0, 4);
BENCHMARK(BM_CacheEvictions)->DenseRange(0, 4);
BENCHMARK(BM_CacheScan)->DenseRange(0, 4);
BENCHMARK(BM_CacheIntervalFill)->DenseRange(0, 4);

BENCHMARK_MAIN();
