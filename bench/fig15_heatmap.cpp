// Figure 15: (a) SimFS cost-effectiveness heatmap over storage/compute
// price; (b) cost vs total storage space; (c) re-simulation compute time
// vs space. 100 analyses, 50% overlap, dt = 3y, cache 25% (a).
#include "bench_util.hpp"
#include "cost/cost_model.hpp"
#include "cost/workload.hpp"

#include <algorithm>
#include <cmath>

using namespace simfs;

int main() {
  bench::banner("Figure 15",
                "(a) cost-effectiveness heatmap; (b) cost vs space; "
                "(c) re-simulation time vs space");

  const auto scenario = cost::cosmoScenario();
  constexpr double kMonths = 36.0;
  Rng rng(42);
  const auto analyses =
      cost::makeForwardAnalyses(rng, 100, scenario.numOutputSteps, 100, 400);

  // ---------------------------------------------------------------- (a)
  cost::VgammaConfig vcfg;  // dr = 8h, 25% cache
  const auto v = static_cast<std::int64_t>(
      cost::evaluateVgamma(scenario, analyses, 0.5, vcfg).simulatedSteps);

  std::printf("(a) ratio min(on-disk, in-situ) / SimFS; >1 means SimFS "
              "cheaper\n    rows: compute $/node/h; cols: storage "
              "$/GiB/month\n\n        ");
  const double storageCosts[] = {0.02, 0.06, 0.10, 0.15, 0.20, 0.25, 0.30};
  const double computeCosts[] = {3.0, 2.5, 2.07, 1.5, 1.0, 0.5, 0.25};
  for (const double cs : storageCosts) std::printf("%7.2f", cs);
  std::printf("\n");
  for (const double cc : computeCosts) {
    std::printf("%7.2f ", cc);
    for (const double cs : storageCosts) {
      const cost::CostRates rates{cc, cs};
      const double onDisk = cost::onDiskCost(scenario, kMonths, rates);
      const double inSitu = cost::inSituCost(scenario, analyses, rates);
      const double simfs =
          cost::simfsCost(scenario, kMonths, 8.0, 0.25, v, rates);
      std::printf("%7.2f", std::min(onDisk, inSitu) / simfs);
    }
    std::printf("\n");
  }
  std::printf("\n    datapoints: Microsoft Azure (cs=0.06, cc=2.07), "
              "Piz Daint (cs=0.04, cc=1.00)\n\n");

  // ------------------------------------------------------------- (b)+(c)
  const auto azure = cost::azureRates();
  std::printf("(b) cost and (c) re-simulation time vs total storage space "
              "(dt = 3y)\n\n");
  std::printf("%-6s %16s %14s %14s %12s %12s\n", "dr(h)", "restarts(TiB)",
              "cost25(k$)", "cost50(k$)", "time25(h)", "time50(h)");
  for (const double deltaR : {4.0, 8.0, 16.0, 32.0}) {
    cost::VgammaConfig cfg;
    cfg.deltaRHours = deltaR;
    cfg.cacheFraction = 0.25;
    const auto v25 = static_cast<std::int64_t>(
        cost::evaluateVgamma(scenario, analyses, 0.5, cfg).simulatedSteps);
    cfg.cacheFraction = 0.50;
    const auto v50 = static_cast<std::int64_t>(
        cost::evaluateVgamma(scenario, analyses, 0.5, cfg).simulatedSteps);
    const double restartTiB =
        static_cast<double>(scenario.numRestartFiles(deltaR)) *
        scenario.restartGiB / 1024.0;
    std::printf(
        "%-6.0f %16.2f %14s %14s %12.1f %12.1f\n", deltaR, restartTiB,
        bench::kiloDollars(
            cost::simfsCost(scenario, kMonths, deltaR, 0.25, v25, azure))
            .c_str(),
        bench::kiloDollars(
            cost::simfsCost(scenario, kMonths, deltaR, 0.50, v50, azure))
            .c_str(),
        cost::resimulationHours(scenario, v25),
        cost::resimulationHours(scenario, v50));
  }
  const double onDisk = cost::onDiskCost(scenario, kMonths, azure);
  std::printf("%-6s %16s %14s\n", "on-disk", "(50 TiB)",
              bench::kiloDollars(onDisk).c_str());
  std::printf(
      "\nexpected shape (paper): restart space halves per dr doubling\n"
      "(6.33/3.16/1.58/0.79 TiB); a bigger cache cuts re-simulation time\n"
      "(~20%%) but raises total cost (~25%%).\n");
  return 0;
}
