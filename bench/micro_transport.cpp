// Same-host transport comparison (google-benchmark): the negotiated shm
// data plane against the unix-socket reactor path, through the full
// serving stack of the daemon:
//
//   transport -> dispatch -> shard queue -> worker batch drain -> DvShard
//   -> buffered reply -> transport
//
// Two shapes per transport:
//
//   * OpenRtt — one client, one pre-seeded kOpenReq in flight at a time,
//     acked before the next goes out. Time/op IS the open round trip; the
//     client spins (no condvar) so the number is the wire + pipeline
//     latency, not scheduler wake-up jitter.
//   * OpenFlood — N clients stream opens with a bounded unacked window;
//     items_per_second is end-to-end throughput. The steady-state
//     allocs/op counter must be 0 on BOTH transports — the shm ring
//     encodes frames in place exactly like the pooled socket path.
//
// Transport selection rides the real negotiation: SIMFS_SHM=0 suppresses
// the client's hello offer (socket baseline), SIMFS_SHM=1 lets the
// session upgrade to the per-connection shm ring pair. Each benchmark
// asserts which data plane it actually got, so a silently-degraded run
// shows up as a skip, not a wrong number.
//
// Run with --json (see bench_util.hpp) for BENCH_transport.json.
#include "alloc_counter.hpp"
#include "bench_util.hpp"
#include "dv/daemon.hpp"
#include "msg/message.hpp"
#include "msg/shm_transport.hpp"
#include "msg/transport.hpp"

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace simfs;

constexpr StepIndex kSeededSteps = 64;
constexpr int kOpsPerClientPerIter = 4096;
constexpr std::uint64_t kInFlightWindow = 256;

class NullLauncher final : public dv::SimLauncher {
 public:
  void launch(SimJobId, const simmodel::JobSpec&) override {}
  void kill(SimJobId) override {}
};

simmodel::ContextConfig benchContext() {
  simmodel::ContextConfig cfg;
  cfg.name = "bench0";
  cfg.geometry = simmodel::StepGeometry(1, 16, 1 << 12);
  cfg.outputStepBytes = 1;
  cfg.cacheQuotaBytes = 1 << 16;  // far above the seeded set: no eviction
  cfg.prefetchEnabled = false;
  return cfg;
}

/// A daemon listening on a fresh socket with one pre-seeded context.
struct BenchDaemon {
  dv::Daemon daemon;
  NullLauncher launcher;
  simmodel::ContextConfig cfg = benchContext();
  std::string path;
  bool ok = false;

  explicit BenchDaemon(std::size_t shards) : daemon([&] {
    dv::Daemon::Options options;
    options.shards = shards;
    options.workers = shards;
    options.queueCap = 16 * kInFlightWindow * 2;
    return options;
  }()) {
    static int serial = 0;
    path = "/tmp/simfs_bench_tp_" + std::to_string(::getpid()) + "_" +
           std::to_string(serial++) + ".sock";
    daemon.setLauncher(&launcher);
    if (!daemon
             .registerContext(std::make_unique<simmodel::SyntheticDriver>(cfg))
             .isOk()) {
      return;
    }
    for (StepIndex s = 0; s < kSeededSteps; ++s) {
      (void)daemon.seedAvailableStep(cfg.name, s);
    }
    ok = daemon.listen(path).isOk();
  }

  ~BenchDaemon() { ::unlink(path.c_str()); }
};

/// One client on the negotiated data plane: counts acks in an atomic so
/// latency-sensitive callers may spin instead of sleeping on a condvar.
struct BenchClient {
  std::unique_ptr<msg::Transport> transport;
  std::vector<std::string> files;
  msg::Message request;
  std::atomic<std::uint64_t> acks{0};
  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t sent = 0;
  bool helloOk = false;
  std::atomic<bool> helloDone{false};

  /// Connects, greets, and reports the data plane the session settled on.
  bool connect(const BenchDaemon& bd) {
    auto conn = msg::unixSocketConnect(bd.path);
    if (!conn.isOk()) return false;
    transport = std::move(*conn);
    for (StepIndex s = 0; s < kSeededSteps; ++s) {
      files.push_back(bd.cfg.codec.outputFile(s));
    }
    transport->setViewHandler([this](const msg::MessageView& m) {
      if (m.type() == msg::MsgType::kHelloAck) {
        helloOk = m.code() == 0;
        helloDone.store(true, std::memory_order_release);
      } else {
        acks.fetch_add(1, std::memory_order_release);
      }
      cv.notify_all();
    });
    msg::Message hello;
    hello.type = msg::MsgType::kHello;
    hello.context = bd.cfg.name;
    hello.intArg = static_cast<std::int64_t>(msg::ClientRole::kAnalysis);
    if (!transport->send(hello).isOk()) return false;
    while (!helloDone.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return helloOk;
  }

  /// One acked open, spinning on the ack counter: the measured RTT.
  bool openOnce(int i) {
    msg::Message& m = request;
    m.type = msg::MsgType::kOpenReq;
    m.files.resize(1);
    m.files[0] = files[static_cast<std::size_t>(i) % files.size()];
    const std::uint64_t want =
        acks.load(std::memory_order_acquire) + 1;
    if (!transport->send(m).isOk()) return false;
    while (acks.load(std::memory_order_acquire) < want) {
      // Yield, don't busy-spin: on a one-core host a hard spin starves
      // the daemon thread that must run to produce the ack.
      std::this_thread::yield();
    }
    return true;
  }

  /// Streams `n` opens with at most kInFlightWindow unacked, then drains.
  void flood(int n) {
    msg::Message& m = request;
    m.type = msg::MsgType::kOpenReq;
    m.files.resize(1);
    for (int i = 0; i < n; ++i) {
      m.files[0] = files[static_cast<std::size_t>(i) % files.size()];
      if (!transport->send(m).isOk()) return;
      ++sent;
      if ((sent & 63u) == 0) {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] {
          return sent - acks.load(std::memory_order_acquire) <=
                 kInFlightWindow;
        });
      }
    }
    std::unique_lock lock(mu);
    cv.wait(lock,
            [&] { return acks.load(std::memory_order_acquire) == sent; });
  }
};

/// Persistent flood threads (thread-per-iteration would allocate and skew
/// the timings — same structure as micro_daemon.cpp).
class FloodPool {
 public:
  explicit FloodPool(std::vector<std::unique_ptr<BenchClient>>& clients)
      : clients_(clients) {
    threads_.reserve(clients_.size());
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      threads_.emplace_back([this, i] { worker(i); });
    }
  }

  ~FloodPool() {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void runRound(int opsPerClient) {
    {
      std::lock_guard lock(mu_);
      ops_ = opsPerClient;
      done_ = 0;
      ++round_;
    }
    cv_.notify_all();
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return done_ == threads_.size(); });
  }

 private:
  void worker(std::size_t index) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [&] { return stop_ || round_ != seen; });
        if (stop_) return;
        seen = round_;
      }
      clients_[index]->flood(ops_);
      {
        std::lock_guard lock(mu_);
        ++done_;
      }
      cv_.notify_all();
    }
  }

  std::vector<std::unique_ptr<BenchClient>>& clients_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t round_ = 0;
  std::size_t done_ = 0;
  int ops_ = 0;
  bool stop_ = false;
};

/// Pins SIMFS_SHM for the benchmark's lifetime and restores it after.
struct ShmKnob {
  explicit ShmKnob(bool enable) {
    const char* prev = std::getenv("SIMFS_SHM");
    hadPrev_ = prev != nullptr;
    if (hadPrev_) prev_ = prev;
    ::setenv("SIMFS_SHM", enable ? "1" : "0", 1);
  }
  ~ShmKnob() {
    if (hadPrev_) {
      ::setenv("SIMFS_SHM", prev_.c_str(), 1);
    } else {
      ::unsetenv("SIMFS_SHM");
    }
  }
  bool hadPrev_ = false;
  std::string prev_;
};

void runOpenRtt(benchmark::State& state, bool shm) {
  ShmKnob knob(shm);
  BenchDaemon bd(/*shards=*/1);
  if (!bd.ok) {
    state.SkipWithError("daemon setup failed");
    return;
  }
  BenchClient client;
  if (!client.connect(bd)) {
    state.SkipWithError("connect/hello failed");
    return;
  }
  const std::string_view kind = client.transport->kindName();
  if (kind != (shm ? "shm" : "socket")) {
    state.SkipWithError("negotiation did not settle on expected plane");
    return;
  }
  // Warm-up: pools, arenas and the ring's futex fast path.
  for (int i = 0; i < 512; ++i) {
    if (!client.openOnce(i)) {
      state.SkipWithError("open failed");
      return;
    }
  }
  int i = 0;
  for (auto _ : state) {
    if (!client.openOnce(i++)) {
      state.SkipWithError("open failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(kind));
  client.transport->close();
}

void runOpenFlood(benchmark::State& state, bool shm) {
  ShmKnob knob(shm);
  const int clients = static_cast<int>(state.range(0));
  BenchDaemon bd(/*shards=*/2);
  if (!bd.ok) {
    state.SkipWithError("daemon setup failed");
    return;
  }
  std::vector<std::unique_ptr<BenchClient>> flood;
  for (int c = 0; c < clients; ++c) {
    auto bc = std::make_unique<BenchClient>();
    if (!bc->connect(bd)) {
      state.SkipWithError("connect/hello failed");
      return;
    }
    if (bc->transport->kindName() != (shm ? "shm" : "socket")) {
      state.SkipWithError("negotiation did not settle on expected plane");
      return;
    }
    flood.push_back(std::move(bc));
  }
  {
    FloodPool pool(flood);
    pool.runRound(kOpsPerClientPerIter);  // untimed warm-up
    for (auto _ : state) {
      pool.runRound(kOpsPerClientPerIter);
    }
    // Steady-state allocation audit (see micro_daemon.cpp): the shm data
    // plane must match the socket path's 0 allocs/op — frames encode
    // straight into ring slots and decode in place as views.
    const std::uint64_t before =
        bench::g_allocCount.load(std::memory_order_relaxed);
    pool.runRound(kOpsPerClientPerIter);
    state.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(bench::g_allocCount.load(
                                std::memory_order_relaxed) -
                            before) /
        (static_cast<double>(clients) * kOpsPerClientPerIter));
  }
  state.SetItemsProcessed(state.iterations() * clients * kOpsPerClientPerIter);
  state.counters["clients"] = clients;
  for (auto& bc : flood) bc->transport->close();
}

void BM_SocketOpenRtt(benchmark::State& state) { runOpenRtt(state, false); }
void BM_ShmOpenRtt(benchmark::State& state) { runOpenRtt(state, true); }
void BM_SocketOpenFlood(benchmark::State& state) {
  runOpenFlood(state, false);
}
void BM_ShmOpenFlood(benchmark::State& state) { runOpenFlood(state, true); }

}  // namespace

BENCHMARK(BM_SocketOpenRtt)->UseRealTime()->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ShmOpenRtt)->UseRealTime()->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_SocketOpenFlood)
    ->ArgNames({"clients"})
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShmOpenFlood)
    ->ArgNames({"clients"})
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return simfs::bench::runMicroBenchmarks(argc, argv, "BENCH_transport.json");
}
