#!/usr/bin/env python3
"""Merge google-benchmark JSON outputs into one BENCH_all.json.

The micro benches each emit their own file (BENCH_micro.json,
BENCH_micro_dv.json, BENCH_daemon.json, BENCH_dvlib.json). CI uploads a
merged artifact so successive PRs can diff ONE file for the whole perf
trajectory instead of chasing per-bench artifacts.

Usage:
    merge_bench.py -o BENCH_all.json IN1.json [IN2.json ...]

Missing or unreadable inputs are skipped with a warning (exit stays 0):
a partially-failed bench step must still produce the artifact for the
benches that did run. Each merged benchmark entry gains a "source" field
naming the file it came from.
"""

import argparse
import json
import sys
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", required=True,
                        help="merged output path (BENCH_all.json)")
    parser.add_argument("inputs", nargs="+",
                        help="google-benchmark JSON files to merge")
    args = parser.parse_args()

    merged = {"context": None, "sources": [], "benchmarks": []}
    for name in args.inputs:
        path = Path(name)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"merge_bench: skipping {name}: {err}", file=sys.stderr)
            continue
        ctx = data.get("context")
        if merged["context"] is None:
            merged["context"] = ctx
        elif isinstance(ctx, dict) and isinstance(merged["context"], dict):
            # Machine facts (hw_cores, reactor_backend) must survive the
            # merge even when the first input predates them.
            for key in ("hw_cores", "reactor_backend"):
                if key in ctx:
                    merged["context"].setdefault(key, ctx[key])
        merged["sources"].append(path.name)
        for bench in data.get("benchmarks", []):
            entry = dict(bench)
            entry["source"] = path.name
            merged["benchmarks"].append(entry)

    Path(args.output).write_text(json.dumps(merged, indent=1) + "\n")
    print(f"merge_bench: wrote {args.output} "
          f"({len(merged['benchmarks'])} benchmarks from "
          f"{len(merged['sources'])} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
