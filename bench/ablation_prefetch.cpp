// Ablation: which prefetching ingredient buys what (DESIGN.md §5).
//
// Four configurations of the COSMO scenario (Fig. 16 setup, forward
// m = 72) at each s_max:
//   off        — no prefetch agents (demand misses only),
//   masking    — restart-latency masking only (Sec. IV-B1a),
//   matching   — masking + bandwidth matching (Sec. IV-B1b),
//   ramped     — matching with the doubling ramp-up (the paper's guard
//                against over-prefetching).
#include "bench_util.hpp"
#include "harness/scenario.hpp"

using namespace simfs;

namespace {

VDuration runOne(int sMax, bool prefetch, bool matching, bool ramp) {
  simmodel::ContextConfig cfg;
  cfg.name = "cosmo";
  cfg.geometry = simmodel::StepGeometry(5, 60, 5760);
  cfg.sMax = sMax;
  cfg.prefetchEnabled = prefetch;
  cfg.bandwidthMatchingEnabled = matching;
  cfg.doublingRampUp = ramp;
  cfg.perf = simmodel::PerfModel(100, 3 * vtime::kSecond, 13 * vtime::kSecond);

  harness::ScenarioConfig scenario;
  scenario.context = cfg;
  harness::AnalysisSpec spec;
  spec.steps = trace::makeForwardTrace(0, 72, 1152);
  spec.tauCli = vtime::kSecond / 2;
  scenario.analyses = {spec};
  const auto res = harness::runScenario(scenario);
  SIMFS_CHECK(res.completed);
  return res.analyses[0].completion();
}

}  // namespace

int main() {
  bench::banner("Ablation", "Prefetching strategies (COSMO fwd, m = 72)");

  std::printf("%-6s %10s %10s %10s %10s   (seconds)\n", "s_max", "off",
              "masking", "matching", "ramped");
  for (const int sMax : {2, 4, 8, 16}) {
    const double off = vtime::toSeconds(runOne(sMax, false, false, false));
    const double masking = vtime::toSeconds(runOne(sMax, true, false, false));
    const double matching = vtime::toSeconds(runOne(sMax, true, true, false));
    const double ramped = vtime::toSeconds(runOne(sMax, true, true, true));
    std::printf("%-6d %10.1f %10.1f %10.1f %10.1f\n", sMax, off, masking,
                matching, ramped);
  }
  std::printf(
      "\nreading: masking removes the per-interval restart latency but\n"
      "cannot exceed one simulation's bandwidth; matching converts spare\n"
      "s_max slots into bandwidth; the ramp trades a slower first batch\n"
      "for fewer wasted simulations when analyses end early.\n");
  return 0;
}
