// Figure 13: data availability cost for different analyses overlaps
// (dt = 2y fixed; overlap 0..100%; dr and cache sweeps as in Fig. 12).
#include "bench_util.hpp"
#include "cost/cost_model.hpp"
#include "cost/workload.hpp"

using namespace simfs;

int main() {
  bench::banner("Figure 13", "Cost vs analyses execution overlap (dt = 2y)");

  const auto scenario = cost::cosmoScenario();
  const auto rates = cost::azureRates();
  constexpr double kMonths = 24.0;
  Rng rng(42);
  const auto analyses =
      cost::makeForwardAnalyses(rng, 100, scenario.numOutputSteps, 100, 400);
  const double inSitu = cost::inSituCost(scenario, analyses, rates);
  const double onDisk = cost::onDiskCost(scenario, kMonths, rates);

  std::printf("on-disk: %s x1000$, in-situ: %s x1000$ (overlap-independent)\n\n",
              bench::kiloDollars(onDisk).c_str(),
              bench::kiloDollars(inSitu).c_str());

  for (const double deltaR : {4.0, 8.0, 16.0}) {
    std::printf("--- dr = %.0f h ---\n", deltaR);
    std::printf("%-10s %14s %14s  (x1000$)\n", "overlap", "SimFS(25%)",
                "SimFS(50%)");
    for (const double overlap : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      cost::VgammaConfig cfg;
      cfg.deltaRHours = deltaR;
      cfg.cacheFraction = 0.25;
      const auto v25 = static_cast<std::int64_t>(
          cost::evaluateVgamma(scenario, analyses, overlap, cfg).simulatedSteps);
      cfg.cacheFraction = 0.50;
      const auto v50 = static_cast<std::int64_t>(
          cost::evaluateVgamma(scenario, analyses, overlap, cfg).simulatedSteps);
      std::printf(
          "%8.0f%% %14s %14s\n", overlap * 100,
          bench::kiloDollars(
              cost::simfsCost(scenario, kMonths, deltaR, 0.25, v25, rates))
              .c_str(),
          bench::kiloDollars(
              cost::simfsCost(scenario, kMonths, deltaR, 0.50, v50, rates))
              .c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape (paper): higher overlap interleaves analyses, lowers\n"
      "temporal locality and raises the SimFS cost; amplified for large dr.\n");
  return 0;
}
