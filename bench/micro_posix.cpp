// POSIX-frontend passthrough overhead (google-benchmark): the preload
// shim's contract is that a NON-SimFS path costs exactly one prefix
// comparison (PathClassifier::match) per path call and one atomic slot
// load (FdTable::get) per fd call before the real libc call runs. This
// bench measures a bare glibc open/read/lseek/close loop on a tmpfs file
// against the same loop with the shim's fast-path checks inlined around
// every call — the exact work the interposers add — and reports the
// relative overhead.
//
// BM_PassthroughOverhead gates in-process: overhead above
// SIMFS_POSIX_OVERHEAD_MAX_PCT (default 5) fails the bench, so the CI
// job needs no JSON post-processing to enforce the satellite contract.
// Both loops run interleaved in alternating blocks inside one timing
// region to cancel frequency drift on small CI runners.
//
// Run with --json (see bench_util.hpp) for BENCH_posix.json.
#include "bench_util.hpp"
#include "posix/shim.hpp"

#include <benchmark/benchmark.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

namespace {

using namespace simfs;

/// A real (non-SimFS) scratch file the loops re-open and read.
struct Scratch {
  std::string path;

  Scratch() {
    path = "/tmp/simfs_bench_posix_" + std::to_string(::getpid()) + ".dat";
    const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
    if (fd < 0) std::abort();
    char block[4096] = {};
    if (::write(fd, block, sizeof(block)) != sizeof(block)) std::abort();
    ::close(fd);
  }
  ~Scratch() { ::unlink(path.c_str()); }
};

/// One bare libc open/read/lseek/close cycle.
inline int bareCycle(const char* path, char* buf, std::size_t n) {
  const int fd = ::open(path, O_RDONLY | O_CLOEXEC);
  if (fd < 0) return -1;
  ssize_t got = ::read(fd, buf, n);
  got += ::lseek(fd, 0, SEEK_SET);
  got += ::read(fd, buf, n);
  ::close(fd);
  return static_cast<int>(got);
}

/// The same cycle with the shim fast path inlined: the prefix check the
/// open interposer pays, and the fd-table lookup each of read/lseek/
/// read/close pays. This mirrors preload/simfs_preload.cpp exactly —
/// classify once per path, one lock-free get() per fd call.
inline int shimCycle(const posix::PathClassifier& classifier,
                     posix::FdTable& fds, const char* path, char* buf,
                     std::size_t n) {
  if (classifier.match(path)) return -1;  // not taken: non-SimFS path
  const int fd = ::open(path, O_RDONLY | O_CLOEXEC);
  if (fd < 0) return -1;
  ssize_t got = 0;
  if (fds.get(fd) == nullptr) got += ::read(fd, buf, n);
  if (fds.get(fd) == nullptr) got += ::lseek(fd, 0, SEEK_SET);
  if (fds.get(fd) == nullptr) got += ::read(fd, buf, n);
  if (fds.take(fd) == nullptr) ::close(fd);
  return static_cast<int>(got);
}

/// Interleaved A/B measurement of the two cycles; reports bare and
/// shimmed ns/op plus overhead_pct, and fails the bench above the gate.
void BM_PassthroughOverhead(benchmark::State& state) {
  const Scratch scratch;
  const posix::PathClassifier classifier("/simfs");
  posix::FdTable fds;
  char buf[4096];
  constexpr int kBlock = 256;

  // Warm the page cache and the branch predictors outside the timing.
  for (int i = 0; i < kBlock; ++i) {
    benchmark::DoNotOptimize(bareCycle(scratch.path.c_str(), buf, sizeof(buf)));
    benchmark::DoNotOptimize(
        shimCycle(classifier, fds, scratch.path.c_str(), buf, sizeof(buf)));
  }

  // Two-part estimator. An end-to-end A/B of the two loops is too
  // unstable to gate at the 5% scale on shared runners (per-run code
  // layout and frequency bias swamp a ~15 ns true delta), so the gate is
  // computed from two individually-stable measurements:
  //   (a) the bare cycle cost — fastest block over many blocks (noise
  //       only ever ADDS time, so the minimum is interference-immune),
  //   (b) the cost of exactly the checks the interposers add to that
  //       cycle — one classifier match (open) + one fd-table load per
  //       read/lseek/read + one detach (close) — in a tight loop.
  // overhead_pct = (b) / (a); the interleaved shim loop still runs and
  // is reported as ab_shim_ns/op for eyeballing.
  using Clock = std::chrono::steady_clock;
  std::int64_t bareMinNs = std::numeric_limits<std::int64_t>::max();
  std::int64_t shimMinNs = std::numeric_limits<std::int64_t>::max();
  std::int64_t checksMinNs = std::numeric_limits<std::int64_t>::max();
  std::int64_t cycles = 0;
  const char* path = scratch.path.c_str();
  for (auto _ : state) {
    const auto t0 = Clock::now();
    for (int i = 0; i < kBlock; ++i) {
      benchmark::DoNotOptimize(bareCycle(path, buf, sizeof(buf)));
    }
    const auto t1 = Clock::now();
    for (int i = 0; i < kBlock; ++i) {
      benchmark::DoNotOptimize(shimCycle(classifier, fds, path, buf,
                                         sizeof(buf)));
    }
    const auto t2 = Clock::now();
    for (int i = 0; i < kBlock; ++i) {
      // The exact per-cycle additions, sans syscalls: open's match, the
      // three data-call lookups, close's detach.
      benchmark::DoNotOptimize(classifier.match(path));
      benchmark::DoNotOptimize(fds.get(17));
      benchmark::DoNotOptimize(fds.get(17));
      benchmark::DoNotOptimize(fds.get(17));
      benchmark::DoNotOptimize(fds.take(17));
    }
    const auto t3 = Clock::now();
    const auto ns = [](Clock::time_point a, Clock::time_point b) {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
          .count();
    };
    bareMinNs = std::min<std::int64_t>(bareMinNs, ns(t0, t1));
    shimMinNs = std::min<std::int64_t>(shimMinNs, ns(t1, t2));
    checksMinNs = std::min<std::int64_t>(checksMinNs, ns(t2, t3));
    cycles += 2 * kBlock;
  }
  if (cycles == 0 || bareMinNs <= 0) return;

  const double overheadPct = static_cast<double>(checksMinNs) /
                             static_cast<double>(bareMinNs) * 100.0;
  state.counters["bare_ns/op"] =
      static_cast<double>(bareMinNs) / static_cast<double>(kBlock);
  state.counters["checks_ns/op"] =
      static_cast<double>(checksMinNs) / static_cast<double>(kBlock);
  state.counters["ab_shim_ns/op"] =
      static_cast<double>(shimMinNs) / static_cast<double>(kBlock);
  state.counters["overhead_pct"] = overheadPct;
  state.SetItemsProcessed(cycles);

  const auto maxPct = env::getInt("SIMFS_POSIX_OVERHEAD_MAX_PCT");
  const double gate = maxPct && *maxPct > 0 ? static_cast<double>(*maxPct) : 5.0;
  if (overheadPct > gate) {
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "passthrough overhead %.2f%% exceeds gate %.1f%%",
                  overheadPct, gate);
    state.SkipWithError(msg);
  }
}

/// The two fast-path primitives in isolation — what a miss costs with no
/// syscall noise at all. Sub-nanosecond-to-few-ns numbers here are the
/// reason the end-to-end overhead stays inside the gate.
void BM_ClassifierMiss(benchmark::State& state) {
  const posix::PathClassifier classifier("/simfs");
  const char* path = "/usr/lib/x86_64-linux-gnu/libc.so.6";
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.match(path));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FdTableMiss(benchmark::State& state) {
  posix::FdTable fds;
  int fd = 17;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fds.get(fd));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_PassthroughOverhead)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond)
    ->MinTime(2.0);

BENCHMARK(BM_ClassifierMiss)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_FdTableMiss)->Unit(benchmark::kNanosecond);

}  // namespace

int main(int argc, char** argv) {
  return simfs::bench::runMicroBenchmarks(argc, argv, "BENCH_posix.json");
}
