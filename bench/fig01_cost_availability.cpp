// Figure 1: aggregated analysis cost vs data availability period.
//
// "The cost of the different analysis solutions (on-disk, in-situ, SimFS)
//  is function of the time period over which the analyses are executed."
// 100 forward analyses, 50% overlap, SimFS with 25% cache and dr = 8 h.
#include "bench_util.hpp"
#include "cost/cost_model.hpp"
#include "cost/workload.hpp"

using namespace simfs;

int main() {
  bench::banner("Figure 1", "Aggregated analysis cost vs availability period");

  const auto scenario = cost::cosmoScenario();
  const auto rates = cost::azureRates();
  constexpr int kAnalyses = 100;
  constexpr double kOverlap = 0.5;

  Rng rng(42);
  const auto analyses = cost::makeForwardAnalyses(
      rng, kAnalyses, scenario.numOutputSteps, 100, 400);

  cost::VgammaConfig vcfg;  // dr = 8h, cache 25%, DCL
  const auto replay = cost::evaluateVgamma(scenario, analyses, kOverlap, vcfg);
  const auto v = static_cast<std::int64_t>(replay.simulatedSteps);
  const double inSitu = cost::inSituCost(scenario, analyses, rates);

  std::printf("workload: %d forward analyses, 50%% overlap; "
              "V(gamma) = %lld re-simulated steps\n\n",
              kAnalyses, static_cast<long long>(v));
  std::printf("%-8s %12s %12s %12s\n", "period", "on-disk", "in-situ",
              "SimFS(25%)");
  std::printf("%-8s %12s %12s %12s\n", "", "(x1000$)", "(x1000$)", "(x1000$)");

  struct Period {
    const char* label;
    double months;
  };
  for (const Period p : {Period{"6m", 6}, {"1y", 12}, {"2y", 24}, {"3y", 36},
                         {"4y", 48}, {"5y", 60}}) {
    const double onDisk = cost::onDiskCost(scenario, p.months, rates);
    const double simfs =
        cost::simfsCost(scenario, p.months, 8.0, 0.25, v, rates);
    std::printf("%-8s %12s %12s %12s\n", p.label,
                bench::kiloDollars(onDisk).c_str(),
                bench::kiloDollars(inSitu).c_str(),
                bench::kiloDollars(simfs).c_str());
  }
  std::printf("\nexpected shape: in-situ flat; on-disk linear in the period;\n"
              "SimFS cheapest for multi-year periods (storage dominates).\n");
  return 0;
}
