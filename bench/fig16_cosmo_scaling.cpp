// Figure 16: strong scalability of analyses accessing virtualized COSMO
// data — analysis completion time vs s_max (max parallel re-simulations).
//
// COSMO context (Sec. VI): one-minute timesteps, output every 5
// (delta_d = 5), restart hourly (delta_r = 60); tau_sim = 3 s,
// alpha_sim = 13 s at the default P = 100 nodes. The analysis reads the
// first 6 hours (m = 72 output steps), forward and backward; the
// full-forward re-simulation (one simulation producing all 72 steps) is
// the baseline.
#include "bench_util.hpp"
#include "harness/scenario.hpp"

using namespace simfs;

namespace {

simmodel::ContextConfig cosmoContext(int sMax) {
  simmodel::ContextConfig cfg;
  cfg.name = "cosmo";
  cfg.geometry = simmodel::StepGeometry(5, 60, 5760);  // 4 simulated days
  cfg.outputStepBytes = 6 * bytes::GiB;
  cfg.sMax = sMax;
  cfg.perf = simmodel::PerfModel(100, 3 * vtime::kSecond, 13 * vtime::kSecond);
  return cfg;
}

VDuration runOne(int sMax, bool backward, VDuration tauCli) {
  harness::ScenarioConfig cfg;
  cfg.context = cosmoContext(sMax);
  harness::AnalysisSpec spec;
  spec.label = backward ? "backward" : "forward";
  spec.steps = backward ? trace::makeBackwardTrace(71, 72, 1152)
                        : trace::makeForwardTrace(0, 72, 1152);
  spec.tauCli = tauCli;
  cfg.analyses = {spec};
  const auto res = harness::runScenario(cfg);
  SIMFS_CHECK(res.completed);
  return res.analyses[0].completion();
}

}  // namespace

int main() {
  bench::banner("Figure 16",
                "COSMO strong scaling: analysis time vs s_max\n"
                "(m = 72 output steps = 6 simulated hours)");

  // The analysis computes mean/variance of a 1-D field: much faster than
  // the simulation (tau_cli << tau_sim).
  const VDuration tauCli = vtime::kSecond / 2;

  // Baseline: a single forward re-simulation producing the same steps.
  const double fullForward = vtime::toSeconds(
      13 * vtime::kSecond + 72 * 3 * vtime::kSecond);

  std::printf("%-6s %14s %14s %12s %12s\n", "s_max", "forward(s)",
              "backward(s)", "fwd speedup", "bwd speedup");
  for (const int sMax : {2, 4, 8, 16}) {
    const double fwd = vtime::toSeconds(runOne(sMax, false, tauCli));
    const double bwd = vtime::toSeconds(runOne(sMax, true, tauCli));
    std::printf("%-6d %14.1f %14.1f %11.2fx %11.2fx\n", sMax, fwd, bwd,
                fullForward / fwd, fullForward / bwd);
  }
  std::printf("%-6s %14.1f  (full forward re-simulation baseline)\n", "ref",
              fullForward);
  std::printf(
      "\nexpected shape (paper): speedup grows with s_max and saturates\n"
      "(~2.4x fwd at s_max=8); backward scales worse (first access waits a\n"
      "whole restart interval before prefetching engages); at s_max=16 the\n"
      "extra simulations produce steps the 72-step analysis never reads.\n");
  return 0;
}
