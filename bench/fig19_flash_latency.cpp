// Figure 19: prefetching FLASH simulations under different restart
// latencies and analysis lengths (s_max = 8; synthetic simulator with the
// FLASH timing: tau_sim = 14 s, delta_d = 1, delta_r = 20).
#include "bench_util.hpp"
#include "harness/scenario.hpp"
#include "prefetch/agent.hpp"

using namespace simfs;

namespace {

constexpr int kSmax = 8;
const VDuration kTauSim = 14 * vtime::kSecond;
const VDuration kTauCli = vtime::kSecond;

simmodel::ContextConfig flashContext(VDuration alpha) {
  simmodel::ContextConfig cfg;
  cfg.name = "flash-syn";
  cfg.geometry = simmodel::StepGeometry(1, 20, 4800);
  cfg.sMax = kSmax;
  cfg.perf = simmodel::PerfModel(54, kTauSim, alpha);
  return cfg;
}

double measured(VDuration alpha, int m) {
  harness::ScenarioConfig cfg;
  cfg.context = flashContext(alpha);
  harness::AnalysisSpec spec;
  spec.steps = trace::makeForwardTrace(0, m, 4800);
  spec.tauCli = kTauCli;
  cfg.analyses = {spec};
  const auto res = harness::runScenario(cfg);
  SIMFS_CHECK(res.completed);
  return vtime::toSeconds(res.analyses[0].completion());
}

std::int64_t resimLength(const simmodel::ContextConfig& cfg) {
  prefetch::PrefetchAgent agent(cfg);
  (void)agent.onAccess(0, 0, true, false);
  (void)agent.onAccess(1, kTauCli, true, false);
  return agent.resimLength();
}

}  // namespace

int main() {
  bench::banner("Figure 19",
                "FLASH prefetching under restart latencies (s_max = 8)");

  for (const int m : {200, 400, 600}) {
    std::printf("--- m = %d output steps (%.0f s of blast time) ---\n", m,
                m * 0.005);
    std::printf("%-10s %12s %12s %12s %12s\n", "alpha(s)", "SimFS(s)",
                "T_pre(s)", "T_single(s)", "T_lower(s)");
    for (const double alphaS : {0.0, 7.0, 50.0, 100.0, 200.0, 400.0, 600.0}) {
      const auto alpha = vtime::fromSeconds(alphaS);
      const auto cfg = flashContext(alpha);
      const double n = static_cast<double>(resimLength(cfg));
      const double tau = vtime::toSeconds(kTauSim);
      const double tPre = 2 * alphaS + n * tau;
      const double tSingle = alphaS + m * tau;
      const double tLower = alphaS + m * tau / kSmax;
      std::printf("%-10.0f %12.1f %12.1f %12.1f %12.1f\n", alphaS,
                  measured(alpha, m), tPre, tSingle, tLower);
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape (paper): prefetching is more effective than for\n"
      "COSMO — the larger tau_sim amortizes the warm-up; around mid-range\n"
      "alpha the time can even dip (longer n per batch covers the rest of\n"
      "the analysis without paying another latency).\n");
  return 0;
}
