// Shared helpers for the figure-reproduction benches: consistent headers,
// simple table printing, environment knobs for repetition counts, and the
// --json machine-readable output mode for the google-benchmark micros.
#pragma once

#include "common/env.hpp"
#include "common/types.hpp"

#include <cstdio>
#include <string>

// The google-benchmark helpers are compiled only into targets that link
// the library (SIMFS_HAVE_GBENCH set by the build for micro benches);
// including benchmark.h unconditionally would force every figure bench
// to link it.
#if defined(SIMFS_HAVE_GBENCH) && __has_include(<benchmark/benchmark.h>)
#define SIMFS_BENCH_GBENCH_ENABLED 1
#include "msg/transport.hpp"

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>
#endif

namespace simfs::bench {

/// Prints the standard bench banner.
inline void banner(const char* figure, const char* title) {
  std::printf("==============================================================\n");
  std::printf("SimFS reproduction — %s\n%s\n", figure, title);
  std::printf("==============================================================\n");
}

/// Repetition count, overridable via an environment variable so CI can
/// trade precision for speed (the paper uses 100 repetitions).
inline int reps(const char* envVar, int fallback) {
  const auto v = env::getInt(envVar);
  return v && *v > 0 ? static_cast<int>(*v) : fallback;
}

/// Formats a dollar amount in the paper's "x1000$" unit.
inline std::string kiloDollars(double dollars) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%8.1f", dollars / 1000.0);
  return buf;
}

/// Formats seconds from VTime.
inline std::string seconds(VTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%8.1f", vtime::toSeconds(t));
  return buf;
}

#ifdef SIMFS_BENCH_GBENCH_ENABLED
/// Replacement for BENCHMARK_MAIN() in the micro benches adding a
/// machine-readable mode:
///
///   micro_cache --json            # results -> jsonDefaultPath
///   micro_cache --json=out.json   # results -> out.json
///
/// The JSON file is google-benchmark's standard format, so downstream
/// tooling (perf-trajectory dashboards, CI comparisons) can diff runs.
/// All other google-benchmark flags pass through unchanged.
inline int runMicroBenchmarks(int argc, char** argv,
                              const char* jsonDefaultPath) {
  std::vector<std::string> args(argv, argv + argc);
  std::string outFlag;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--json") {
      outFlag = std::string("--benchmark_out=") + jsonDefaultPath;
      it = args.erase(it);
    } else if (it->rfind("--json=", 0) == 0) {
      outFlag = "--benchmark_out=" + it->substr(7);
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (!outFlag.empty()) {
    args.push_back(outFlag);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> cargv;
  cargv.reserve(args.size());
  for (auto& a : args) cargv.push_back(a.data());
  int cargc = static_cast<int>(cargv.size());
  benchmark::Initialize(&cargc, cargv.data());
  // Machine context stamped into every BENCH_*.json: perf gates need to
  // know whether the runner could even exhibit parallel speedups
  // (hw_cores) and which reactor the numbers were taken on.
  benchmark::AddCustomContext(
      "hw_cores", std::to_string(std::thread::hardware_concurrency()));
  benchmark::AddCustomContext("reactor_backend",
                              std::string(msg::reactorBackendName()));
  if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
#endif  // SIMFS_BENCH_GBENCH_ENABLED

}  // namespace simfs::bench
