// Shared helpers for the figure-reproduction benches: consistent headers,
// simple table printing, and environment knobs for repetition counts.
#pragma once

#include "common/env.hpp"
#include "common/types.hpp"

#include <cstdio>
#include <string>

namespace simfs::bench {

/// Prints the standard bench banner.
inline void banner(const char* figure, const char* title) {
  std::printf("==============================================================\n");
  std::printf("SimFS reproduction — %s\n%s\n", figure, title);
  std::printf("==============================================================\n");
}

/// Repetition count, overridable via an environment variable so CI can
/// trade precision for speed (the paper uses 100 repetitions).
inline int reps(const char* envVar, int fallback) {
  const auto v = env::getInt(envVar);
  return v && *v > 0 ? static_cast<int>(*v) : fallback;
}

/// Formats a dollar amount in the paper's "x1000$" unit.
inline std::string kiloDollars(double dollars) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%8.1f", dollars / 1000.0);
  return buf;
}

/// Formats seconds from VTime.
inline std::string seconds(VTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%8.1f", vtime::toSeconds(t));
  return buf;
}

}  // namespace simfs::bench
